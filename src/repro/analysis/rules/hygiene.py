"""API-hygiene rules: ``__all__``, docstrings, defaults, exception handling.

These keep the public surface of the package explicit — important for a repo
whose modules are imported selectively by the experiment runners and whose
API table is asserted by ``tests/test_api_surface.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.core import Diagnostic, ModuleContext, Rule, rule

__all__ = ["public_toplevel_defs"]

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set"}


def public_toplevel_defs(tree: ast.Module) -> list[ast.AST]:
    """Top-level public function/class definitions of a module."""
    return [
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        and astutil.is_public_name(node.name)
    ]


def _has_dunder_all(tree: ast.Module) -> bool:
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
    return False


@rule(
    "api-missing-all",
    "module defines public names but no __all__",
)
def _missing_all(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    publics = public_toplevel_defs(module.tree)
    if publics and not _has_dunder_all(module.tree):
        names = ", ".join(sorted(n.name for n in publics)[:4])
        yield self.diagnostic(
            module,
            None,
            f"module defines public names ({names}, ...) but no __all__; "
            "declare the intended API explicitly",
        )


@rule(
    "api-missing-docstring",
    "public module / function / class / method without a docstring",
)
def _missing_docstring(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    if ast.get_docstring(module.tree) is None:
        yield self.diagnostic(module, None, "module has no docstring")
    for node in public_toplevel_defs(module.tree):
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            yield self.diagnostic(
                module, node, f"public {kind} {node.name!r} has no docstring"
            )
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if not astutil.is_public_name(member.name):
                    continue
                if ast.get_docstring(member) is None:
                    yield self.diagnostic(
                        module,
                        member,
                        f"public method {node.name}.{member.name!r} has no "
                        "docstring",
                    )


@rule(
    "api-mutable-default",
    "mutable default argument (list/dict/set) shared across calls",
)
def _mutable_default(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                yield self.diagnostic(
                    module,
                    default,
                    f"mutable default argument in {node.name}(); default to "
                    "None and construct inside the body",
                )


@rule(
    "api-bare-except",
    "bare `except:` swallows SystemExit/KeyboardInterrupt",
)
def _bare_except(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield self.diagnostic(
                module,
                node,
                "bare except clause; catch a specific exception type",
            )
