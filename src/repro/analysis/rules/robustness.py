"""Fault-tolerance rules for the quantization runtime.

The recovery ladder (:mod:`repro.runtime.recovery`) only protects code that
routes through it: a stray ``np.linalg.cholesky`` or ``np.linalg.inv`` in an
experiment runner crashes the whole run the first time calibration produces
a non-positive-definite Hessian.  The ``runtime-raw-linalg`` rule pins the
raw factorizations to the two sanctioned modules — the solver itself and the
recovery ladder that wraps it — so every other caller inherits retry,
damping escalation, and the RTN/pseudo-inverse fallbacks for free.

The ``perf-raw-factorization`` rule guards the performance contract the
same way: ``factorize_hessian``/``inverse_cholesky`` are ``O(d³)``, so
calling them directly from pipeline code silently re-factorizes Hessians
that :class:`repro.quant.solver.HessianFactorCache` (or the ``cache``
parameter of ``quantize_with_hessian``/``robust_quantize_layer``) would
have deduplicated — exactly the regression this PR's fix removed from
``quantize_with_hessian`` call sites.

The ``serve-unbounded-queue`` rule protects the serving layer's
backpressure contract: every queue or deque constructed inside
:mod:`repro.serve` must carry an explicit bound, because an unbounded
buffer converts overload into unbounded memory growth and silent latency
instead of the typed :class:`~repro.runtime.errors.AdmissionError` the
admission path promises.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis import astutil
from repro.analysis.core import Diagnostic, ModuleContext, Rule, rule

__all__ = [
    "RAW_LINALG_ALLOWED",
    "RAW_FACTORIZATION_ALLOWED",
    "BOUNDED_QUEUE_PACKAGES",
]

#: Modules allowed to call the raw factorizations (dotted, no ``.py``).
RAW_LINALG_ALLOWED = (
    "repro.quant.solver",
    "repro.runtime.recovery",
)

_RAW_LINALG_CALLS = {"linalg.cholesky", "linalg.inv"}


@rule(
    "runtime-raw-linalg",
    "raw np.linalg.cholesky/inv outside the sanctioned recovery modules",
)
def _raw_linalg(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    if module.in_package(*RAW_LINALG_ALLOWED):
        return
    for node in astutil.walk_calls(module.tree):
        name = astutil.numpy_call_name(node)
        if name in _RAW_LINALG_CALLS:
            tail = name.split(".")[-1]
            replacement = (
                "repro.runtime.recovery.robust_quantize_layer"
                if tail == "cholesky"
                else "repro.runtime.recovery.hessian_inverse"
            )
            yield self.diagnostic(
                module,
                node,
                f"raw np.{name}() bypasses the numerical recovery ladder "
                f"(it raises LinAlgError on ill-conditioned Hessians); "
                f"route through {replacement}",
            )


#: Modules allowed to factorize Hessians directly (dotted, no ``.py``).
RAW_FACTORIZATION_ALLOWED = ("repro.quant.solver",)

_RAW_FACTORIZATION_CALLS = {"factorize_hessian", "inverse_cholesky"}


@rule(
    "perf-raw-factorization",
    "direct Hessian factorization outside the solver bypasses the factor cache",
)
def _raw_factorization(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    if module.in_package(*RAW_FACTORIZATION_ALLOWED):
        return
    for node in astutil.walk_calls(module.tree):
        name = astutil.call_name(node)
        if name is None:
            continue
        tail = name.split(".")[-1]
        if tail in _RAW_FACTORIZATION_CALLS:
            yield self.diagnostic(
                module,
                node,
                f"direct {tail}() re-factorizes the Hessian on every call "
                f"(O(d^3)); pass a repro.quant.solver.HessianFactorCache "
                f"via the cache parameter of quantize_with_hessian / "
                f"robust_quantize_layer instead",
            )


#: Packages whose queues/deques must carry an explicit bound.
BOUNDED_QUEUE_PACKAGES = ("repro.serve",)

#: Queue constructors and where their bound parameter lives:
#: (positional index, keyword name).
_QUEUE_BOUNDS = {
    "Queue": (0, "maxsize"),
    "PriorityQueue": (0, "maxsize"),
    "LifoQueue": (0, "maxsize"),
    "deque": (1, "maxlen"),
}

#: Constructors with no bound parameter at all — never acceptable here.
_UNBOUNDABLE_QUEUES = {"SimpleQueue"}


def _queue_bound_expr(node: ast.Call, tail: str) -> Optional[ast.expr]:
    """The expression bounding this queue constructor call, or ``None``."""
    position, keyword_name = _QUEUE_BOUNDS[tail]
    for keyword in node.keywords:
        if keyword.arg == keyword_name:
            return keyword.value
    if len(node.args) > position:
        return node.args[position]
    return None


def _is_unbounded_literal(expr: ast.expr) -> bool:
    """Whether a bound expression is the literal "no limit" (None or 0)."""
    return isinstance(expr, ast.Constant) and expr.value in (None, 0)


@rule(
    "serve-unbounded-queue",
    "queue/deque in the serving layer without an explicit bound",
)
def _unbounded_queue(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    if not module.in_package(*BOUNDED_QUEUE_PACKAGES):
        return
    for node in astutil.walk_calls(module.tree):
        name = astutil.call_name(node)
        if name is None:
            continue
        tail = name.split(".")[-1]
        if tail in _UNBOUNDABLE_QUEUES:
            yield self.diagnostic(
                module,
                node,
                f"{name}() cannot be bounded; the serving layer requires "
                f"explicit backpressure — use a bounded Queue(maxsize=n) "
                f"and fail fast with AdmissionError when full",
            )
            continue
        if tail not in _QUEUE_BOUNDS:
            continue
        bound = _queue_bound_expr(node, tail)
        if bound is None or _is_unbounded_literal(bound):
            _, keyword_name = _QUEUE_BOUNDS[tail]
            yield self.diagnostic(
                module,
                node,
                f"unbounded {name}() buffers overload instead of applying "
                f"backpressure; pass an explicit {keyword_name} (the "
                f"admission path rejects with AdmissionError + retry_after "
                f"when full)",
            )
