"""Fault-tolerance rules for the quantization runtime.

The recovery ladder (:mod:`repro.runtime.recovery`) only protects code that
routes through it: a stray ``np.linalg.cholesky`` or ``np.linalg.inv`` in an
experiment runner crashes the whole run the first time calibration produces
a non-positive-definite Hessian.  The ``runtime-raw-linalg`` rule pins the
raw factorizations to the two sanctioned modules — the solver itself and the
recovery ladder that wraps it — so every other caller inherits retry,
damping escalation, and the RTN/pseudo-inverse fallbacks for free.

The ``perf-raw-factorization`` rule guards the performance contract the
same way: ``factorize_hessian``/``inverse_cholesky`` are ``O(d³)``, so
calling them directly from pipeline code silently re-factorizes Hessians
that :class:`repro.quant.solver.HessianFactorCache` (or the ``cache``
parameter of ``quantize_with_hessian``/``robust_quantize_layer``) would
have deduplicated — exactly the regression this PR's fix removed from
``quantize_with_hessian`` call sites.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis import astutil
from repro.analysis.core import Diagnostic, ModuleContext, Rule, rule

__all__ = ["RAW_LINALG_ALLOWED", "RAW_FACTORIZATION_ALLOWED"]

#: Modules allowed to call the raw factorizations (dotted, no ``.py``).
RAW_LINALG_ALLOWED = (
    "repro.quant.solver",
    "repro.runtime.recovery",
)

_RAW_LINALG_CALLS = {"linalg.cholesky", "linalg.inv"}


@rule(
    "runtime-raw-linalg",
    "raw np.linalg.cholesky/inv outside the sanctioned recovery modules",
)
def _raw_linalg(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    if module.in_package(*RAW_LINALG_ALLOWED):
        return
    for node in astutil.walk_calls(module.tree):
        name = astutil.numpy_call_name(node)
        if name in _RAW_LINALG_CALLS:
            tail = name.split(".")[-1]
            replacement = (
                "repro.runtime.recovery.robust_quantize_layer"
                if tail == "cholesky"
                else "repro.runtime.recovery.hessian_inverse"
            )
            yield self.diagnostic(
                module,
                node,
                f"raw np.{name}() bypasses the numerical recovery ladder "
                f"(it raises LinAlgError on ill-conditioned Hessians); "
                f"route through {replacement}",
            )


#: Modules allowed to factorize Hessians directly (dotted, no ``.py``).
RAW_FACTORIZATION_ALLOWED = ("repro.quant.solver",)

_RAW_FACTORIZATION_CALLS = {"factorize_hessian", "inverse_cholesky"}


@rule(
    "perf-raw-factorization",
    "direct Hessian factorization outside the solver bypasses the factor cache",
)
def _raw_factorization(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    if module.in_package(*RAW_FACTORIZATION_ALLOWED):
        return
    for node in astutil.walk_calls(module.tree):
        name = astutil.call_name(node)
        if name is None:
            continue
        tail = name.split(".")[-1]
        if tail in _RAW_FACTORIZATION_CALLS:
            yield self.diagnostic(
                module,
                node,
                f"direct {tail}() re-factorizes the Hessian on every call "
                f"(O(d^3)); pass a repro.quant.solver.HessianFactorCache "
                f"via the cache parameter of quantize_with_hessian / "
                f"robust_quantize_layer instead",
            )
