"""Fork-safety and bit-identity hazard rules for the parallel runtime.

The determinism contract of :mod:`repro.runtime.parallel` —
``workers=N`` bit-identical to ``workers=0`` — rests on three properties
of everything submitted to a worker pool, and each gets a whole-program
rule over the effect summaries of :mod:`repro.analysis.effects`:

* ``wp-fork-unsafe-effect`` — a submitted callable must not mutate module
  globals or closure cells (fork-inherited memory: child writes are
  invisible to the parent, so the serial and parallel runs diverge) and
  must not consume unseeded RNG (per-process streams differ);
* ``wp-unordered-merge`` — results must be merged in submission order:
  ``imap_unordered`` / ``as_completed`` iteration and ``set()`` collapses
  of a parallel result list discard the ordering the contract needs;
* ``wp-order-dependent-reduction`` — in-loop ``+=`` / ``-=``
  accumulations on non-constant values inside functions *reachable from a
  submitted callable* are flagged: floating-point accumulation is
  non-associative, so any future re-tiling or cross-task merge of such a
  reduction silently breaks bit-identity.  Reductions whose order is
  pinned by a differential test (the solver's tile flushes, proven by
  ``tests/test_quant_differential.py``) are allowlisted with a
  ``# lint: disable=`` pragma naming this rule on the flagged line.
"""

from __future__ import annotations

from repro.analysis.core import Diagnostic, wprule
from repro.analysis.effects import function_index, resolve_callable

__all__ = []

#: Effect kinds that make a callable unsafe to run in forked workers.
_FORK_UNSAFE = ("mutates-global", "mutates-closure", "rng")

#: Fan-out iteration methods that return results in completion order.
_UNORDERED_CALLS = ("imap_unordered", "as_completed")


def _function_records(project):
    for summary in project.summaries(include_consumers=False):
        for record in getattr(summary, "functions", []):
            yield summary, record


def _submission_sites(project):
    for summary, record in _function_records(project):
        for callee, line, via, result_var in record.submissions:
            yield summary, record, callee, line, via, result_var


@wprule(
    "wp-fork-unsafe-effect",
    "callables submitted to worker pools must not mutate globals/closures "
    "or consume unseeded RNG",
)
def _wp_fork_unsafe_effect(self, project):
    """Check the inferred effects of every pool-submitted callable."""
    effects = project.effect_summaries()
    index = function_index(project)
    for summary, record, callee, line, via, _ in _submission_sites(project):
        if callee is None:
            continue
        target = resolve_callable(
            project, index, summary.module, record.qualname, callee
        )
        if target is None:
            continue
        verdict = effects.get(target)
        if verdict is None:
            continue
        bad = [kind for kind in _FORK_UNSAFE if kind in verdict.effects]
        if not bad:
            continue
        reasons = "; ".join(verdict.effects[kind] for kind in bad)
        yield Diagnostic(
            self.id,
            summary.path,
            line,
            0,
            f"'{callee}' submitted via {via} has fork-unsafe effect(s) "
            f"{', '.join(bad)} ({target[0]}.{target[1]}: {reasons}); "
            "worker-side mutation is invisible to the parent, breaking "
            "the workers=N == workers=0 contract",
        )


@wprule(
    "wp-unordered-merge",
    "parallel results must be merged in submission order",
)
def _wp_unordered_merge(self, project):
    """Flag completion-order iteration and order-discarding collapses."""
    for summary, record in _function_records(project):
        results = {
            entry[3] for entry in record.submissions if entry[3] is not None
        }
        for dotted, line, _, args, _kwargs in record.calls:
            last = dotted.split(".")[-1]
            if last in _UNORDERED_CALLS:
                yield Diagnostic(
                    self.id,
                    summary.path,
                    line,
                    0,
                    f"'{dotted}' yields results in completion order; the "
                    "bit-identity contract requires submission-order "
                    "merges (use pool.map / run_parallel_map)",
                )
            elif (
                dotted in ("set", "frozenset")
                and len(args) == 1
                and args[0] is not None
                and args[0][0] in results
            ):
                yield Diagnostic(
                    self.id,
                    summary.path,
                    line,
                    0,
                    f"'{dotted}({args[0][0]})' discards the submission "
                    "order of a parallel result list; merge it as an "
                    "ordered sequence",
                )


@wprule(
    "wp-order-dependent-reduction",
    "in-loop float accumulations on parallel paths are "
    "accumulation-order-sensitive",
)
def _wp_order_dependent_reduction(self, project):
    """Flag reductions in functions reachable from a pool submission."""
    index = function_index(project)
    entry_of: dict = {}
    queue: list = []
    for summary, record, callee, line, via, _ in _submission_sites(project):
        if callee is None:
            continue
        target = resolve_callable(
            project, index, summary.module, record.qualname, callee
        )
        if target is None or target in entry_of:
            continue
        entry_of[target] = (callee, f"{summary.path}:{line}")
        queue.append(target)
    while queue:
        key = queue.pop()
        record = index[key]
        for dotted, line, _, _args, _kwargs in record.calls:
            nxt = resolve_callable(project, index, key[0], key[1], dotted)
            if nxt is not None and nxt not in entry_of:
                entry_of[nxt] = entry_of[key]
                queue.append(nxt)

    paths = {
        summary.module: summary.path
        for summary in project.summaries(include_consumers=False)
    }
    seen: set = set()
    for key, (entry, site) in sorted(entry_of.items()):
        record = index[key]
        path = paths.get(key[0])
        if path is None:
            continue
        for line, text in record.reductions:
            if (path, line) in seen:
                continue
            seen.add((path, line))
            yield Diagnostic(
                self.id,
                path,
                line,
                0,
                f"'{text}' in {key[1]} accumulates in iteration order and "
                f"is reachable from parallel submission '{entry}' ({site}); "
                "float accumulation is non-associative — keep the order "
                "schedule-independent, or prove bit-identity and allowlist "
                "the line with a lint disable pragma naming this rule",
            )
