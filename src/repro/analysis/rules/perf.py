"""Performance rules for the inference/evaluation hot paths.

The evaluation harness scores every token of every window, so its cost is
dominated by what happens per ``(batch, seq, vocab)`` logit block.  The
fused :func:`repro.nn.functional.gather_nll` computes per-token NLL
without materialising the full-vocab log-probability tensor; a stray
``log_softmax``-then-gather in pipeline code silently reintroduces that
allocation (3 vocab-sized temporaries per batch) and the memory traffic
that goes with it.  The ``perf-full-logsoftmax`` rule pins full-vocab
``log_softmax`` calls to the two modules that define the primitives —
everything else should route through ``gather_nll``/``cross_entropy``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.core import Diagnostic, ModuleContext, Rule, rule

__all__ = ["FULL_LOGSOFTMAX_ALLOWED", "CALIBRATION_REFORWARD_ALLOWED"]

#: Modules allowed to call ``log_softmax`` directly (dotted, no ``.py``):
#: the numpy and autograd primitive definitions, whose reference
#: compositions (``gather_nll_reference``) exist to differentially test
#: the fused path.
FULL_LOGSOFTMAX_ALLOWED = (
    "repro.nn.functional",
    "repro.autograd.ops",
)


@rule(
    "perf-full-logsoftmax",
    "full-vocab log_softmax outside the primitive modules; use gather_nll",
)
def _full_logsoftmax(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    if module.in_package(*FULL_LOGSOFTMAX_ALLOWED):
        return
    for node in astutil.walk_calls(module.tree):
        name = astutil.call_name(node)
        if name is None:
            continue
        if name.split(".")[-1] == "log_softmax":
            yield self.diagnostic(
                module,
                node,
                "log_softmax materialises the full (..., vocab) log-prob "
                "tensor; for per-token NLL route through the fused "
                "repro.nn.functional.gather_nll (or ops.gather_nll on the "
                "autograd path), which is bit-identical and allocation-free",
            )


#: Modules allowed to re-forward the model per (block, batch) pair: the
#: reference calibration path (``capture_attention`` and the legacy
#: ``attention_hessians`` entry point) that the streaming fast path is
#: certified against lives in ``repro.core.hessian``.
CALIBRATION_REFORWARD_ALLOWED = ("repro.core.hessian",)


@rule(
    "perf-calibration-reforward",
    "per-block model re-forward in a calibration loop; stream captures",
)
def _calibration_reforward(
    self: Rule, module: ModuleContext
) -> Iterator[Diagnostic]:
    if module.in_package(*CALIBRATION_REFORWARD_ALLOWED):
        return
    reported: set[int] = set()
    for loop in ast.walk(module.tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        block_loop = isinstance(loop, ast.For) and "blocks" in ast.unparse(
            loop.iter
        )
        for node in astutil.walk_calls(loop):
            if id(node) in reported:
                continue
            name = astutil.call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if parts[-1] == "capture_attention":
                reported.add(id(node))
                yield self.diagnostic(
                    module,
                    node,
                    "capture_attention restarts at the embedding for every "
                    "(block, batch) pair — O(L^2) block forwards over a "
                    "calibration run; stream per-block captures through "
                    "repro.core.hessian.CalibrationCaptureStream instead "
                    "(bit-identical, one block forward per batch)",
                )
            elif (
                block_loop
                and parts[-1] in ("forward", "forward_array")
                and any("model" in part for part in parts[:-1])
            ):
                reported.add(id(node))
                yield self.diagnostic(
                    module,
                    node,
                    "full-model forward inside a loop over blocks re-runs "
                    "the whole quantized prefix per block; cache the "
                    "running hidden states via "
                    "repro.core.hessian.CalibrationCaptureStream",
                )
