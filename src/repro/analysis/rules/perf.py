"""Performance rules for the inference/evaluation hot paths.

The evaluation harness scores every token of every window, so its cost is
dominated by what happens per ``(batch, seq, vocab)`` logit block.  The
fused :func:`repro.nn.functional.gather_nll` computes per-token NLL
without materialising the full-vocab log-probability tensor; a stray
``log_softmax``-then-gather in pipeline code silently reintroduces that
allocation (3 vocab-sized temporaries per batch) and the memory traffic
that goes with it.  The ``perf-full-logsoftmax`` rule pins full-vocab
``log_softmax`` calls to the two modules that define the primitives —
everything else should route through ``gather_nll``/``cross_entropy``.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis import astutil
from repro.analysis.core import Diagnostic, ModuleContext, Rule, rule

__all__ = ["FULL_LOGSOFTMAX_ALLOWED"]

#: Modules allowed to call ``log_softmax`` directly (dotted, no ``.py``):
#: the numpy and autograd primitive definitions, whose reference
#: compositions (``gather_nll_reference``) exist to differentially test
#: the fused path.
FULL_LOGSOFTMAX_ALLOWED = (
    "repro.nn.functional",
    "repro.autograd.ops",
)


@rule(
    "perf-full-logsoftmax",
    "full-vocab log_softmax outside the primitive modules; use gather_nll",
)
def _full_logsoftmax(self: Rule, module: ModuleContext) -> Iterator[Diagnostic]:
    if module.in_package(*FULL_LOGSOFTMAX_ALLOWED):
        return
    for node in astutil.walk_calls(module.tree):
        name = astutil.call_name(node)
        if name is None:
            continue
        if name.split(".")[-1] == "log_softmax":
            yield self.diagnostic(
                module,
                node,
                "log_softmax materialises the full (..., vocab) log-prob "
                "tensor; for per-token NLL route through the fused "
                "repro.nn.functional.gather_nll (or ops.gather_nll on the "
                "autograd path), which is bit-identical and allocation-free",
            )
