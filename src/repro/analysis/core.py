"""Core of the static-analysis framework: rules, contexts, and the walker.

The framework is deliberately small: a :class:`Rule` is a named check over
one parsed module; a :class:`ModuleContext` bundles the parsed AST with the
source text and per-line suppression comments; :func:`analyze_paths` walks a
file tree and returns every :class:`Diagnostic` that survives suppression.

Rules register themselves via the :func:`rule` decorator so that importing
:mod:`repro.analysis.rules` populates the registry as a side effect.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

__all__ = [
    "Diagnostic",
    "ModuleContext",
    "Rule",
    "WholeProgramRule",
    "rule",
    "wprule",
    "all_rules",
    "all_wp_rules",
    "all_rule_ids",
    "get_rule",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "unused_suppression_diagnostics",
    "UNUSED_SUPPRESSION_RULE",
]

#: Rule id of the synthesized "stale # lint: disable= pragma" warning.
UNUSED_SUPPRESSION_RULE = "lint-unused-suppression"

#: Diagnostic ids that are synthesized by the driver rather than registered.
_SYNTHETIC_RULE_IDS = frozenset({"syntax-error", UNUSED_SUPPRESSION_RULE})

#: Matches the per-line disable pragma (``lint: disable=`` plus a
#: comma-separated rule list) anywhere in a line.  The rule list must start
#: immediately after ``=`` so prose *describing* the pragma never parses.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One rule violation at a specific source location.

    ``severity`` is ``"error"`` for contract violations and ``"warning"``
    for advisories (currently only stale-suppression notices); warnings do
    not fail the CLI unless ``--strict`` is given.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def format(self) -> str:
        """Render as ``path:line:col: rule-id: message`` (one line)."""
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}:{tag} {self.message}"

    def to_json(self) -> dict[str, object]:
        """Plain-dict form consumed by the JSON/SARIF reporters and cache."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    @staticmethod
    def from_json(record: dict) -> "Diagnostic":
        """Rebuild a diagnostic from its :meth:`to_json` form."""
        return Diagnostic(
            record["rule"],
            record["path"],
            int(record["line"]),
            int(record["col"]),
            record["message"],
            record.get("severity", "error"),
        )


class ModuleContext:
    """A parsed module plus the metadata rules need to inspect it.

    Parameters
    ----------
    path:
        Display path of the module (used in diagnostics and for the
        path-scoped rules, e.g. the in-place-mutation allowlist).
    source:
        Full module source text.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self._suppressions = self._parse_suppressions(self.lines)
        self._used_suppressions: set[tuple[int, str]] = set()

    @staticmethod
    def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
        suppressions: dict[int, set[str]] = {}
        for number, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                names = {part.strip() for part in match.group(1).split(",")}
                suppressions[number] = {name for name in names if name}
        return suppressions

    @property
    def module_parts(self) -> tuple[str, ...]:
        """Path components from the last ``repro`` segment onwards.

        Lets path-scoped rules reason about package membership regardless of
        where the tree is checked out (``src/repro/quant/rtn.py`` and
        ``/tmp/fixture/repro/quant/rtn.py`` both map to
        ``('repro', 'quant', 'rtn.py')``).
        """
        parts = Path(self.path).parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return parts[index:]
        return parts

    def in_package(self, *dotted: str) -> bool:
        """Whether this module lives under any of the given dotted packages."""
        module = ".".join(self.module_parts)
        for prefix in dotted:
            if module == prefix + ".py" or module.startswith(prefix + "."):
                return True
        return False

    @property
    def module_name(self) -> str:
        """Dotted module name derived from the path (``repro.quant.rtn``)."""
        parts = list(self.module_parts)
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled on ``line`` by a lint comment.

        A positive answer marks the pragma as *used* so the driver can warn
        about stale suppressions afterwards.
        """
        if rule_id in self._suppressions.get(line, set()):
            self._used_suppressions.add((line, rule_id))
            return True
        return False

    def suppression_items(self) -> Iterator[tuple[int, str]]:
        """Every ``(line, rule_id)`` pair named by a suppression pragma."""
        for line, names in sorted(self._suppressions.items()):
            for name in sorted(names):
                yield line, name

    def mark_suppression_used(self, line: int, rule_id: str) -> None:
        """Record that the pragma on ``line`` for ``rule_id`` did suppress."""
        self._used_suppressions.add((line, rule_id))

    def used_suppressions(self) -> set[tuple[int, str]]:
        """The ``(line, rule_id)`` pragmas that suppressed a diagnostic."""
        return set(self._used_suppressions)


class Rule:
    """A named static check applied to one :class:`ModuleContext`.

    Subclasses (or plain functions wrapped by :func:`rule`) implement
    :meth:`check` and yield :class:`Diagnostic` objects; suppression is
    handled centrally by the driver, not by the rule.
    """

    id: str = ""
    summary: str = ""

    def __init__(
        self,
        rule_id: str = "",
        summary: str = "",
        check: Optional[Callable[["Rule", ModuleContext], Iterable[Diagnostic]]] = None,
    ):
        if rule_id:
            self.id = rule_id
        if summary:
            self.summary = summary
        if check is not None:
            self._check = check

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        """Yield diagnostics for ``module`` (before suppression filtering)."""
        checker = getattr(self, "_check", None)
        if checker is None:
            raise NotImplementedError(f"rule {self.id!r} defines no check")
        return checker(self, module)

    def diagnostic(
        self, module: ModuleContext, node: ast.AST | None, message: str
    ) -> Diagnostic:
        """Build a :class:`Diagnostic` anchored at ``node`` (or line 1)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Diagnostic(self.id, module.path, line, col, message)


class WholeProgramRule(Rule):
    """A static check over a whole :class:`~repro.analysis.project.Project`.

    Whole-program rules see every module summary at once (import graph,
    exports, shape-annotated signatures, op records) and so can express
    cross-module invariants that a :class:`Rule` cannot.  Their ``check``
    receives a ``Project`` instead of a :class:`ModuleContext`; suppression
    filtering is still per line, driven by the owning module's pragmas.
    """


_REGISTRY: dict[str, Rule] = {}
_WP_REGISTRY: dict[str, WholeProgramRule] = {}


def rule(rule_id: str, summary: str) -> Callable:
    """Register a rule.  Decorates either a ``Rule`` subclass or a function.

    Function form::

        @rule("api-bare-except", "no bare except clauses")
        def _bare_except(self, module):
            ...yield self.diagnostic(...)
    """

    def decorator(obj):
        if isinstance(obj, type) and issubclass(obj, Rule):
            instance = obj()
            instance.id = rule_id
            instance.summary = summary
        else:
            instance = Rule(rule_id, summary, check=obj)
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = instance
        return obj

    return decorator


def wprule(rule_id: str, summary: str) -> Callable:
    """Register a whole-program rule (see :func:`rule` for the two forms)."""

    def decorator(obj):
        if isinstance(obj, type) and issubclass(obj, WholeProgramRule):
            instance = obj()
            instance.id = rule_id
            instance.summary = summary
        else:
            instance = WholeProgramRule(rule_id, summary, check=obj)
        if rule_id in _WP_REGISTRY or rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _WP_REGISTRY[rule_id] = instance
        return obj

    return decorator


def _ensure_rules_loaded() -> None:
    # Deferred so `import repro.analysis.core` alone has no side effects.
    from repro.analysis import rules as _rules  # noqa: F401  (registers builtins)


def all_rules() -> list[Rule]:
    """Every registered per-module rule, sorted by id."""
    _ensure_rules_loaded()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def all_wp_rules() -> list[WholeProgramRule]:
    """Every registered whole-program rule, sorted by id."""
    _ensure_rules_loaded()
    return [_WP_REGISTRY[key] for key in sorted(_WP_REGISTRY)]


def all_rule_ids(whole_program: bool = True) -> set[str]:
    """Every valid rule id, including the driver-synthesized ones."""
    _ensure_rules_loaded()
    ids = set(_REGISTRY) | set(_SYNTHETIC_RULE_IDS)
    if whole_program:
        ids |= set(_WP_REGISTRY)
    return ids


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (raises ``KeyError`` on unknown ids)."""
    _ensure_rules_loaded()
    if rule_id in _REGISTRY:
        return _REGISTRY[rule_id]
    return _WP_REGISTRY[rule_id]


def unused_suppression_diagnostics(
    module: ModuleContext, ran_rule_ids: Iterable[str]
) -> list[Diagnostic]:
    """Warnings for ``# lint: disable=`` pragmas that suppressed nothing.

    Only pragmas naming a rule that actually *ran* are judged — a pragma for
    a whole-program rule is left alone during a per-module run.  Pragmas
    naming a rule id that does not exist at all are always flagged.
    """
    ran = set(ran_rule_ids)
    known = all_rule_ids()
    warnings: list[Diagnostic] = []
    for line, rule_id in module.suppression_items():
        if rule_id == UNUSED_SUPPRESSION_RULE:
            continue
        if (line, rule_id) in module.used_suppressions():
            continue
        if rule_id not in known:
            message = (
                f"suppression names unknown rule {rule_id!r}; "
                "remove it or fix the rule id"
            )
        elif rule_id in ran:
            message = (
                f"unused suppression: {rule_id!r} reports nothing on this "
                "line; remove the stale pragma"
            )
        else:
            continue
        if module.is_suppressed(UNUSED_SUPPRESSION_RULE, line):
            continue
        warnings.append(
            Diagnostic(
                UNUSED_SUPPRESSION_RULE, module.path, line, 0, message, "warning"
            )
        )
    return warnings


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    report_unused_suppressions: bool = True,
) -> list[Diagnostic]:
    """Run the (optionally ``select``-restricted) rule set over ``source``.

    Returns surviving diagnostics sorted by (line, col, rule id).  Raises
    ``SyntaxError`` if the source does not parse.  Stale ``# lint:
    disable=`` pragmas are reported as warnings unless
    ``report_unused_suppressions`` is False (the whole-program driver defers
    that judgement until its own passes have also consumed pragmas); a
    pragma only counts as stale when its rule was actually selected to run.
    """
    module = ModuleContext(path, source)
    chosen = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {r.id for r in chosen}
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        chosen = [r for r in chosen if r.id in wanted]
    found: list[Diagnostic] = []
    for checker in chosen:
        for diagnostic in checker.check(module):
            if not module.is_suppressed(diagnostic.rule_id, diagnostic.line):
                found.append(diagnostic)
    if report_unused_suppressions:
        # Judged against the rules that actually ran: under --select, a
        # pragma for an excluded rule is never "unused" (its rule was
        # never given the chance to report).
        found.extend(
            unused_suppression_diagnostics(module, (r.id for r in chosen))
        )
    found.sort(key=lambda d: (d.line, d.col, d.rule_id))
    return found


def analyze_file(
    path: str | Path, select: Optional[Iterable[str]] = None
) -> list[Diagnostic]:
    """Analyze one file on disk (see :func:`analyze_source`)."""
    path = Path(path)
    return analyze_source(path.read_text(), str(path), select=select)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files pass through, dirs recurse).

    Hidden directories and ``__pycache__`` are skipped; results are sorted
    for deterministic reports.
    """
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for found in sorted(entry.rglob("*.py")):
                parts = found.relative_to(entry).parts
                if any(p == "__pycache__" or p.startswith(".") for p in parts):
                    continue
                yield found
        else:
            yield entry


def analyze_paths(
    paths: Iterable[str | Path], select: Optional[Iterable[str]] = None
) -> list[Diagnostic]:
    """Analyze every python file reachable from ``paths``.

    A file that fails to parse contributes a single ``syntax-error``
    diagnostic rather than aborting the whole run.
    """
    found: list[Diagnostic] = []
    for path in iter_python_files(paths):
        try:
            found.extend(analyze_file(path, select=select))
        except SyntaxError as error:
            found.append(
                Diagnostic(
                    "syntax-error",
                    str(path),
                    error.lineno or 1,
                    (error.offset or 1) - 1,
                    f"could not parse: {error.msg}",
                )
            )
    return found
