"""Core of the static-analysis framework: rules, contexts, and the walker.

The framework is deliberately small: a :class:`Rule` is a named check over
one parsed module; a :class:`ModuleContext` bundles the parsed AST with the
source text and per-line suppression comments; :func:`analyze_paths` walks a
file tree and returns every :class:`Diagnostic` that survives suppression.

Rules register themselves via the :func:`rule` decorator so that importing
:mod:`repro.analysis.rules` populates the registry as a side effect.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

__all__ = [
    "Diagnostic",
    "ModuleContext",
    "Rule",
    "rule",
    "all_rules",
    "get_rule",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
]

#: Matches ``# lint: disable=rule-a,rule-b`` anywhere in a line.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: rule-id: message`` (one line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"

    def to_json(self) -> dict[str, object]:
        """Plain-dict form consumed by the JSON reporter."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleContext:
    """A parsed module plus the metadata rules need to inspect it.

    Parameters
    ----------
    path:
        Display path of the module (used in diagnostics and for the
        path-scoped rules, e.g. the in-place-mutation allowlist).
    source:
        Full module source text.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self._suppressions = self._parse_suppressions(self.lines)

    @staticmethod
    def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
        suppressions: dict[int, set[str]] = {}
        for number, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                names = {part.strip() for part in match.group(1).split(",")}
                suppressions[number] = {name for name in names if name}
        return suppressions

    @property
    def module_parts(self) -> tuple[str, ...]:
        """Path components from the last ``repro`` segment onwards.

        Lets path-scoped rules reason about package membership regardless of
        where the tree is checked out (``src/repro/quant/rtn.py`` and
        ``/tmp/fixture/repro/quant/rtn.py`` both map to
        ``('repro', 'quant', 'rtn.py')``).
        """
        parts = Path(self.path).parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return parts[index:]
        return parts

    def in_package(self, *dotted: str) -> bool:
        """Whether this module lives under any of the given dotted packages."""
        module = ".".join(self.module_parts)
        for prefix in dotted:
            if module == prefix + ".py" or module.startswith(prefix + "."):
                return True
        return False

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled on ``line`` by a lint comment."""
        return rule_id in self._suppressions.get(line, set())


class Rule:
    """A named static check applied to one :class:`ModuleContext`.

    Subclasses (or plain functions wrapped by :func:`rule`) implement
    :meth:`check` and yield :class:`Diagnostic` objects; suppression is
    handled centrally by the driver, not by the rule.
    """

    id: str = ""
    summary: str = ""

    def __init__(
        self,
        rule_id: str = "",
        summary: str = "",
        check: Optional[Callable[["Rule", ModuleContext], Iterable[Diagnostic]]] = None,
    ):
        if rule_id:
            self.id = rule_id
        if summary:
            self.summary = summary
        if check is not None:
            self._check = check

    def check(self, module: ModuleContext) -> Iterable[Diagnostic]:
        """Yield diagnostics for ``module`` (before suppression filtering)."""
        checker = getattr(self, "_check", None)
        if checker is None:
            raise NotImplementedError(f"rule {self.id!r} defines no check")
        return checker(self, module)

    def diagnostic(
        self, module: ModuleContext, node: ast.AST | None, message: str
    ) -> Diagnostic:
        """Build a :class:`Diagnostic` anchored at ``node`` (or line 1)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Diagnostic(self.id, module.path, line, col, message)


_REGISTRY: dict[str, Rule] = {}


def rule(rule_id: str, summary: str) -> Callable:
    """Register a rule.  Decorates either a ``Rule`` subclass or a function.

    Function form::

        @rule("api-bare-except", "no bare except clauses")
        def _bare_except(self, module):
            ...yield self.diagnostic(...)
    """

    def decorator(obj):
        if isinstance(obj, type) and issubclass(obj, Rule):
            instance = obj()
            instance.id = rule_id
            instance.summary = summary
        else:
            instance = Rule(rule_id, summary, check=obj)
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = instance
        return obj

    return decorator


def _ensure_rules_loaded() -> None:
    # Deferred so `import repro.analysis.core` alone has no side effects.
    from repro.analysis import rules as _rules  # noqa: F401  (registers builtins)


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_rules_loaded()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (raises ``KeyError`` on unknown ids)."""
    _ensure_rules_loaded()
    return _REGISTRY[rule_id]


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Run the (optionally ``select``-restricted) rule set over ``source``.

    Returns surviving diagnostics sorted by (line, col, rule id).  Raises
    ``SyntaxError`` if the source does not parse.
    """
    module = ModuleContext(path, source)
    chosen = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {r.id for r in chosen}
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        chosen = [r for r in chosen if r.id in wanted]
    found: list[Diagnostic] = []
    for checker in chosen:
        for diagnostic in checker.check(module):
            if not module.is_suppressed(diagnostic.rule_id, diagnostic.line):
                found.append(diagnostic)
    found.sort(key=lambda d: (d.line, d.col, d.rule_id))
    return found


def analyze_file(
    path: str | Path, select: Optional[Iterable[str]] = None
) -> list[Diagnostic]:
    """Analyze one file on disk (see :func:`analyze_source`)."""
    path = Path(path)
    return analyze_source(path.read_text(), str(path), select=select)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files pass through, dirs recurse).

    Hidden directories and ``__pycache__`` are skipped; results are sorted
    for deterministic reports.
    """
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for found in sorted(entry.rglob("*.py")):
                parts = found.relative_to(entry).parts
                if any(p == "__pycache__" or p.startswith(".") for p in parts):
                    continue
                yield found
        else:
            yield entry


def analyze_paths(
    paths: Iterable[str | Path], select: Optional[Iterable[str]] = None
) -> list[Diagnostic]:
    """Analyze every python file reachable from ``paths``.

    A file that fails to parse contributes a single ``syntax-error``
    diagnostic rather than aborting the whole run.
    """
    found: list[Diagnostic] = []
    for path in iter_python_files(paths):
        try:
            found.extend(analyze_file(path, select=select))
        except SyntaxError as error:
            found.append(
                Diagnostic(
                    "syntax-error",
                    str(path),
                    error.lineno or 1,
                    (error.offset or 1) - 1,
                    f"could not parse: {error.msg}",
                )
            )
    return found
