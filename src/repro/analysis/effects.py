"""Per-function effect inference over the whole-program project model.

Every function in a root module gets a :class:`FunctionRecord` — a small,
serializable AST extract of what the function *does*: names it binds,
parameters / globals / closure cells it mutates, RNG and I/O it touches,
every call site (with enough argument structure for interprocedural
propagation), every callable it submits to a worker pool, and every
in-loop accumulation.  Records live on
:class:`~repro.analysis.project.ModuleSummary`, so warm cache runs never
re-parse.

:func:`infer_effects` then propagates effects through the resolved call
graph to a fixpoint:

* ``mutates-global``, ``rng`` and ``io`` propagate unconditionally from
  callee to caller;
* ``mutates-param`` propagates *argument-aware*: the caller inherits it
  only for arguments that are its own parameters (a caller passing its own
  local is not mutated from the outside), escalating to ``mutates-global``
  / ``mutates-closure`` when the mutated argument is a module global or a
  closure cell;
* a method call on a module-global receiver whose resolved method mutates
  ``self`` makes the caller ``mutates-global`` (the pattern behind
  ``faults.maybe_fault`` -> ``_ACTIVE.check``).

``mutates-closure`` deliberately does **not** propagate through calls: a
function calling its own nested closure that mutates the shared frame has
no effect visible outside itself.  Unresolvable calls are assumed pure
(the analysis is an under-approximation); the concurrency rules in
:mod:`repro.analysis.rules.concurrency` consume these summaries.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
from typing import Iterable, Optional

from repro.analysis.astutil import call_name, dotted_name

__all__ = [
    "FunctionRecord",
    "EffectSummary",
    "collect_function_records",
    "function_index",
    "resolve_callable",
    "infer_effects",
    "render_effects",
]

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "setflags",
        "fill",
        "put",
        "partial_fit",
        "setdiagonal",
    }
)

#: RNG entry points that are *seeded* (hence deterministic) when called
#: with at least one argument.
_SEEDED_IF_ARGS = ("default_rng", "Random", "Generator", "SeedSequence", "PCG64")

#: Call names (exact) and dotted prefixes that perform I/O.
_IO_NAMES = frozenset({"open", "print", "input"})
_IO_PREFIXES = ("os.", "shutil.", "subprocess.", "sys.stdout", "sys.stderr")
_IO_NUMPY = frozenset({"save", "savez", "savez_compressed", "load", "savetxt", "loadtxt"})
_IO_METHODS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes", "mkdir",
     "unlink", "touch", "rmdir", "flush"}
)

#: Pool-style fan-out method names whose first argument runs in workers.
_POOL_MAP_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "map_async"}
)


@dataclasses.dataclass
class FunctionRecord:
    """Serializable effect-relevant extract of one function definition.

    ``effects`` maps a *local* effect kind (``mutates-global``,
    ``mutates-closure``, ``rng``, ``io``) to a human-readable reason;
    ``calls`` entries are ``[dotted, line, receiver_kind, args, kwargs]``
    where ``args`` holds ``[name, kind]`` pairs for name arguments (None
    otherwise) and ``kwargs`` maps keyword names to the same pairs;
    ``submissions`` entries are ``[callee, line, via, result_var]``;
    ``reductions`` entries are ``[line, source_text]`` for in-loop ``+=`` /
    ``-=`` accumulations on non-constant values.
    """

    qualname: str
    line: int
    params: list
    effects: dict
    mutated_params: list
    calls: list
    submissions: list
    reductions: list
    nested: bool

    def to_json(self) -> dict:
        """Serializable form (cache storage)."""
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(record: dict) -> "FunctionRecord":
        """Rebuild from :meth:`to_json` output."""
        return FunctionRecord(**record)


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
def _module_names(tree: ast.Module) -> frozenset:
    names: set = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            names.add(element.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for item in node.names:
                names.add((item.asname or item.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for item in node.names:
                names.add(item.asname or item.name)
    return frozenset(names)


def _iter_local(stmts: Iterable[ast.AST]):
    """Yield nodes of a function body without descending into nested scopes.

    Nested function/class/lambda nodes are yielded once (for name binding
    and submission references) but their bodies belong to their own
    records.
    """
    queue = list(stmts)
    cursor = 0
    while cursor < len(queue):
        node = queue[cursor]
        cursor += 1
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        queue.extend(ast.iter_child_nodes(node))


def _param_names(args: ast.arguments) -> list:
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.append(extra.arg)
    return names


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _bound_names(target: ast.AST):
    """Names a store-target *binds* (Attribute/Subscript targets bind none)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _is_constant_step(value: ast.AST) -> bool:
    if isinstance(value, ast.UnaryOp):
        value = value.operand
    return isinstance(value, ast.Constant) and isinstance(value.value, (int, float))


class _Collector:
    """Collects one :class:`FunctionRecord` from a function-like AST node."""

    def __init__(self, qualname, node, module_names, enclosing_locals, nested):
        self.qualname = qualname
        self.node = node
        self.module_names = module_names
        self.enclosing_locals = enclosing_locals
        self.nested = nested
        self.params = _param_names(node.args)
        self.body = [node.body] if isinstance(node, ast.Lambda) else node.body
        self.globals_declared: set = set()
        self.nonlocals_declared: set = set()
        self.locals: set = set(self.params)
        self.effects: dict = {}
        self.mutated_params: set = set()
        self.calls: list = []
        self.submissions: list = []
        self.reductions: list = []

    # -- pass A: name binding ------------------------------------------
    def _bind_names(self) -> None:
        for node in _iter_local(self.body):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
            elif isinstance(node, ast.Nonlocal):
                self.nonlocals_declared.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    self.locals.update(_bound_names(target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self.locals.update(_bound_names(node.target))
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                self.locals.update(_bound_names(node.optional_vars))
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.locals.add(node.name)
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    self.locals.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.locals.add(node.name)
            elif isinstance(node, ast.comprehension):
                self.locals.update(_bound_names(node.target))
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for item in node.names:
                    self.locals.add((item.asname or item.name).split(".")[0])
        self.locals -= self.globals_declared
        self.locals -= self.nonlocals_declared

    # -- classification -------------------------------------------------
    def kind_of(self, name: str) -> str:
        """Scope class of ``name`` as seen from this function."""
        if name in self.globals_declared:
            return "global"
        if name in self.nonlocals_declared:
            return "closure"
        if name in self.params:
            return "param"
        if name in self.locals:
            return "local"
        if name in self.module_names:
            return "global"
        if name in self.enclosing_locals:
            return "closure"
        if name in _BUILTIN_NAMES:
            return "builtin"
        return "closure" if self.nested else "global"

    def _add_effect(self, kind: str, reason: str) -> None:
        self.effects.setdefault(kind, reason)

    def _record_store(self, target: ast.AST, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, line)
            return
        if isinstance(target, ast.Name):
            kind = self.kind_of(target.id)
            if kind == "global" and target.id in self.globals_declared:
                self._add_effect(
                    "mutates-global",
                    f"rebinds module global '{target.id}' (line {line})",
                )
            elif kind == "closure" and target.id in self.nonlocals_declared:
                self._add_effect(
                    "mutates-closure",
                    f"rebinds nonlocal '{target.id}' (line {line})",
                )
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root is None:
                return
            kind = self.kind_of(root)
            text = ast.unparse(target)
            if kind == "param":
                self.mutated_params.add(root)
            elif kind == "global":
                self._add_effect(
                    "mutates-global", f"writes '{text}' (line {line})"
                )
            elif kind == "closure":
                self._add_effect(
                    "mutates-closure", f"writes '{text}' (line {line})"
                )

    # -- calls / rng / io ----------------------------------------------
    def _rng_reason(self, dotted: str, call: ast.Call) -> Optional[str]:
        head = dotted.split(".")[0]
        if not (
            dotted.startswith(("np.random.", "numpy.random.", "random."))
            or head == "random"
        ):
            return None
        last = dotted.split(".")[-1]
        if last in _SEEDED_IF_ARGS and (call.args or call.keywords):
            return None  # explicitly seeded: deterministic
        return f"calls '{dotted}' (line {call.lineno})"

    def _io_reason(self, dotted: str, call: ast.Call) -> Optional[str]:
        if dotted in _IO_NAMES:
            return f"calls '{dotted}' (line {call.lineno})"
        if dotted.startswith(_IO_PREFIXES):
            return f"calls '{dotted}' (line {call.lineno})"
        head, _, rest = dotted.partition(".")
        if head in ("np", "numpy") and rest in _IO_NUMPY:
            return f"calls '{dotted}' (line {call.lineno})"
        if "." in dotted and dotted.split(".")[-1] in _IO_METHODS:
            return f"calls '{dotted}' (line {call.lineno})"
        return None

    def _name_pair(self, node: ast.AST):
        if isinstance(node, ast.Name):
            return [node.id, self.kind_of(node.id)]
        return None

    def _submission_callee(self, call: ast.Call) -> Optional[tuple]:
        dotted = call_name(call)
        if dotted is None or not call.args:
            return None
        last = dotted.split(".")[-1]
        via = None
        if last == "run_parallel_map":
            via = "run_parallel_map"
        elif "." in dotted and last in _POOL_MAP_METHODS:
            root = _root_name(call.func.value)
            if root is not None and "pool" in root.lower():
                via = last
        if via is None:
            return None
        target = call.args[0]
        if isinstance(target, ast.Name):
            return target.id, via
        if isinstance(target, ast.Attribute):
            name = dotted_name(target)
            return (name, via) if name else None
        if isinstance(target, ast.Lambda):
            return f"{self.qualname}.<lambda:{target.lineno}>", via
        return None

    def _record_call(self, call: ast.Call) -> None:
        dotted = call_name(call)
        if dotted is None:
            return
        reason = self._rng_reason(dotted, call)
        if reason is not None:
            self._add_effect("rng", reason)
        reason = self._io_reason(dotted, call)
        if reason is not None:
            self._add_effect("io", reason)
        receiver_kind = ""
        if "." in dotted:
            head = dotted.split(".")[0]
            receiver_kind = self.kind_of(head)
            last = dotted.split(".")[-1]
            if last in _MUTATING_METHODS:
                if receiver_kind == "param":
                    self.mutated_params.add(head)
                elif receiver_kind == "global":
                    self._add_effect(
                        "mutates-global",
                        f"calls '{dotted}' on module global (line {call.lineno})",
                    )
                elif receiver_kind == "closure":
                    self._add_effect(
                        "mutates-closure",
                        f"calls '{dotted}' on closure cell (line {call.lineno})",
                    )
        args = [self._name_pair(arg) for arg in call.args]
        kwargs = {
            kw.arg: self._name_pair(kw.value)
            for kw in call.keywords
            if kw.arg is not None and isinstance(kw.value, ast.Name)
        }
        self.calls.append([dotted, call.lineno, receiver_kind, args, kwargs])
        submission = self._submission_callee(call)
        if submission is not None:
            callee, via = submission
            self.submissions.append([callee, call.lineno, via, None])

    def _attach_result_var(self, node: ast.Assign) -> None:
        if not isinstance(node.value, ast.Call):
            return
        if self._submission_callee(node.value) is None:
            return
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            for entry in self.submissions:
                if entry[1] == node.value.lineno:
                    entry[3] = node.targets[0].id

    # -- reductions ------------------------------------------------------
    def _record_reductions(self) -> None:
        seen: set = set()
        for node in _iter_local(self.body):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for inner in _iter_local(node.body):
                if not isinstance(inner, ast.AugAssign):
                    continue
                if not isinstance(inner.op, (ast.Add, ast.Sub)):
                    continue
                if _is_constant_step(inner.value):
                    continue
                if inner.lineno in seen:
                    continue
                seen.add(inner.lineno)
                op = "+=" if isinstance(inner.op, ast.Add) else "-="
                self.reductions.append(
                    [inner.lineno, f"{ast.unparse(inner.target)} {op} ..."]
                )
        self.reductions.sort()

    # -- driver ----------------------------------------------------------
    def collect(self) -> FunctionRecord:
        """Run both passes and return the finished record."""
        self._bind_names()
        for node in _iter_local(self.body):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    self._record_store(target, node.lineno)
            elif isinstance(node, ast.Call):
                self._record_call(node)
        # Second pass: submissions now exist, so result variables can bind.
        for node in _iter_local(self.body):
            if isinstance(node, ast.Assign):
                self._attach_result_var(node)
        self._record_reductions()
        line = getattr(self.node, "lineno", 1)
        return FunctionRecord(
            qualname=self.qualname,
            line=line,
            params=list(self.params),
            effects=dict(self.effects),
            mutated_params=sorted(self.mutated_params),
            calls=self.calls,
            submissions=self.submissions,
            reductions=self.reductions,
            nested=self.nested,
        )


def collect_function_records(tree: ast.Module) -> list:
    """Every :class:`FunctionRecord` in ``tree``, nested scopes included.

    Qualified names follow definition nesting (``Class.method``,
    ``outer.inner``); lambdas are only recorded when they appear directly
    inside a collected function body, as ``owner.<lambda:LINE>``.
    """
    module_names = _module_names(tree)
    records: list = []

    def collect_one(node, qualname, enclosing, nested):
        collector = _Collector(qualname, node, module_names, enclosing, nested)
        records.append(collector.collect())
        inner = frozenset(enclosing | collector.locals | set(collector.params))
        for stmt in _iter_local(collector.body):
            if isinstance(stmt, ast.Lambda):
                lam = _Collector(
                    f"{qualname}.<lambda:{stmt.lineno}>",
                    stmt,
                    module_names,
                    inner,
                    True,
                )
                records.append(lam.collect())
        visit_body(collector.body, qualname + ".", inner, True)

    def visit_body(body, prefix, enclosing, nested):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collect_one(node, prefix + node.name, enclosing, nested)
            elif isinstance(node, ast.ClassDef):
                visit_body(node.body, prefix + node.name + ".", enclosing, nested)

    visit_body(tree.body, "", frozenset(), False)
    return records


# ----------------------------------------------------------------------
# Interprocedural propagation
# ----------------------------------------------------------------------
@dataclasses.dataclass
class EffectSummary:
    """Fixpoint effect verdict for one function."""

    module: str
    qualname: str
    path: str
    line: int
    effects: dict
    mutated_params: list

    def classify(self) -> str:
        """Compact lattice label (``pure`` when no effect was inferred)."""
        parts = []
        if self.mutated_params:
            parts.append("mutates-param(" + ",".join(self.mutated_params) + ")")
        parts.extend(sorted(self.effects))
        return "+".join(parts) if parts else "pure"


def _lookup_dotted(project, index, full: str, depth: int = 0):
    parts = full.split(".")
    for split in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:split])
        qualname = ".".join(parts[split:])
        if (module, qualname) in index:
            return module, qualname
        summary = project.by_module.get(module)
        if summary is not None and depth < 3:
            head = qualname.split(".")[0]
            rest = qualname[len(head):]
            for record in summary.imports:
                if record.alias == head and record.name:
                    found = _lookup_dotted(
                        project, index, record.target() + rest, depth + 1
                    )
                    if found is not None:
                        return found
    return None


def resolve_callable(project, index, module: str, caller: str, dotted: str):
    """Resolve a call written as ``dotted`` inside ``module.caller``.

    Returns an ``(module, qualname)`` key into the function index, or None
    when the target is outside the project (assumed pure).  Resolution
    tries, in order: ``self.method`` against the enclosing class, the
    lexical scope chain (nested helpers), import aliases (including
    function-local imports), and finally a unique same-module method match
    for calls through instances (``_ACTIVE.check``).
    """
    if dotted.startswith("self.") and "." in caller:
        candidate = caller.split(".")[0] + dotted[4:]
        if (module, candidate) in index:
            return module, candidate
    prefix = caller
    while True:
        candidate = f"{prefix}.{dotted}" if prefix else dotted
        if (module, candidate) in index:
            return module, candidate
        if not prefix:
            break
        prefix = prefix.rpartition(".")[0]
    summary = project.by_module.get(module)
    if summary is not None:
        head, _, rest = dotted.partition(".")
        for record in summary.imports:
            if record.alias == head:
                full = record.target() + (("." + rest) if rest else "")
                found = _lookup_dotted(project, index, full)
                if found is not None:
                    return found
    if "." in dotted and not dotted.startswith("self."):
        method = dotted.rpartition(".")[2]
        matches = [
            key
            for key in index
            if key[0] == module and key[1].endswith("." + method)
        ]
        if len(matches) == 1:
            return matches[0]
    return None


def _escalate(state, key, kind, reason) -> bool:
    if kind in state[key].effects:
        return False
    state[key].effects[kind] = reason
    return True


def function_index(project) -> dict:
    """Map ``(module, qualname)`` to its record across root modules."""
    index: dict = {}
    for summary in project.summaries(include_consumers=False):
        for record in getattr(summary, "functions", []):
            index[(summary.module, record.qualname)] = record
    return index


def infer_effects(project) -> dict:
    """Propagate per-function effects to a fixpoint over the call graph.

    Returns a mapping ``(module, qualname) -> EffectSummary`` covering
    every function record of every root (non-consumer) module.
    """
    index = function_index(project)
    state: dict = {}
    for summary in project.summaries(include_consumers=False):
        for record in getattr(summary, "functions", []):
            key = (summary.module, record.qualname)
            state[key] = EffectSummary(
                module=summary.module,
                qualname=record.qualname,
                path=summary.path,
                line=record.line,
                effects=dict(record.effects),
                mutated_params=list(record.mutated_params),
            )

    changed = True
    while changed:
        changed = False
        for key, record in index.items():
            module, caller = key
            for dotted, line, receiver_kind, args, kwargs in record.calls:
                target = resolve_callable(project, index, module, caller, dotted)
                if target is None or target == key:
                    continue
                callee_state = state[target]
                callee_record = index[target]
                for kind in ("mutates-global", "rng", "io"):
                    if kind in callee_state.effects:
                        changed |= _escalate(
                            state,
                            key,
                            kind,
                            f"calls {target[1]} [{target[0]}] "
                            f"(line {line}): {callee_state.effects[kind]}",
                        )
                mutated = set(callee_state.mutated_params)
                if not mutated:
                    continue
                callee_params = list(callee_record.params)
                has_receiver = bool(receiver_kind) and callee_params[:1] == ["self"]
                if has_receiver and "self" in mutated:
                    head = dotted.split(".")[0]
                    reason = (
                        f"calls {target[1]} [{target[0]}] (line {line}) "
                        f"which mutates its receiver '{head}'"
                    )
                    if receiver_kind == "param" and head not in state[key].mutated_params:
                        state[key].mutated_params.append(head)
                        state[key].mutated_params.sort()
                        changed = True
                    elif receiver_kind == "global":
                        changed |= _escalate(state, key, "mutates-global", reason)
                    elif receiver_kind == "closure":
                        changed |= _escalate(state, key, "mutates-closure", reason)
                positional = callee_params[1:] if has_receiver else callee_params
                bindings = list(zip(positional, args))
                bindings.extend(
                    (name, pair)
                    for name, pair in kwargs.items()
                    if name in callee_params
                )
                for param_name, pair in bindings:
                    if pair is None or param_name not in mutated:
                        continue
                    arg_name, arg_kind = pair
                    reason = (
                        f"passes '{arg_name}' to {target[1]} [{target[0]}] "
                        f"(line {line}) which mutates parameter '{param_name}'"
                    )
                    if arg_kind == "param" and arg_name not in state[key].mutated_params:
                        state[key].mutated_params.append(arg_name)
                        state[key].mutated_params.sort()
                        changed = True
                    elif arg_kind == "global":
                        changed |= _escalate(state, key, "mutates-global", reason)
                    elif arg_kind == "closure":
                        changed |= _escalate(state, key, "mutates-closure", reason)
    return state


def render_effects(effect_map: dict) -> str:
    """Text report of :func:`infer_effects` output, one function per line."""
    lines = []
    for key in sorted(effect_map, key=lambda k: (effect_map[k].path, effect_map[k].line)):
        summary = effect_map[key]
        label = summary.classify()
        detail = "; ".join(
            f"{kind}: {reason}" for kind, reason in sorted(summary.effects.items())
        )
        suffix = f"  [{detail}]" if detail else ""
        lines.append(
            f"{summary.path}:{summary.line}: "
            f"{summary.module}.{summary.qualname}: {label}{suffix}"
        )
    return "\n".join(lines)
