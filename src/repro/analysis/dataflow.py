"""Abstract interpretation of ``Shapes:``-annotated function bodies.

For every function carrying a ``Shapes:`` docstring section (see
:mod:`repro.analysis.shapes`), the interpreter binds the declared symbolic
dims to the parameters and walks the body, propagating shapes and dtypes
through the numpy subset the repo actually uses: ``@``, elementwise
arithmetic, ``reshape``/``transpose``/``swapaxes``, reductions, ``astype``,
``np.zeros``-style constructors, and — interprocedurally — calls to other
annotated functions, resolved through the project's import graph.

The domain is deliberately one-sided: anything the interpreter does not
understand becomes *unknown* and produces no diagnostic.  Findings are
emitted only when two **known** facts conflict:

* ``wp-shape-mismatch`` — incompatible matmul inner dims, a reshape that
  changes the symbolic element count, a call argument that cannot unify
  with the callee's declared shape (the transposed-Hessian class of bug),
  or a return value contradicting the function's own declaration;
* ``wp-dtype-narrowing`` — a float64 value passed into a parameter declared
  ``f32``/``f16``, or a call into another module whose declared return
  dtype is sub-f64, outside the storage-layer allowlist;
* ``wp-bad-shape-spec`` — a ``Shapes:`` section that does not parse (so
  annotation typos fail loudly instead of disabling checks).

Distinct symbols are semantically distinct: ``(d_in, d_out)`` never unifies
with ``(d_out, d_in)`` even though both dims may be equal at runtime.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Optional

from repro.analysis import astutil
from repro.analysis.core import Diagnostic, Rule, WholeProgramRule, wprule
from repro.analysis.shapes import (
    DTYPE_ORDER,
    Dim,
    TensorSpec,
    format_shape,
    instantiate,
    is_narrowing,
    unify_dim,
    unify_shape,
)

__all__ = ["AbstractValue", "analyze_module_dataflow", "module_in_packages"]

_DTYPE_NAMES = {
    "float64": "f64",
    "double": "f64",
    "float32": "f32",
    "single": "f32",
    "float16": "f16",
    "half": "f16",
    "int64": "i64",
    "int32": "i32",
    "bool": "bool",
    "bool_": "bool",
}

_ELEMENTWISE_NP = {
    "exp", "log", "sqrt", "abs", "sign", "tanh", "cos", "sin", "negative",
    "clip", "minimum", "maximum", "ascontiguousarray", "atleast_1d",
}

_PASSTHROUGH_METHODS = {"copy", "astype"}


@dataclasses.dataclass(frozen=True)
class AbstractValue:
    """One point in the shape/dtype lattice.

    ``shape`` is a dim tuple for tensors (None = unknown tensor/non-tensor);
    ``dim`` carries the symbolic value of dim-valued scalars; ``items``
    holds the element values of tuple expressions (``x.shape``, reshape
    argument tuples).
    """

    shape: Optional[tuple] = None
    dtype: Optional[str] = None
    dim: Dim = None
    items: Optional[tuple] = None


UNKNOWN = AbstractValue()


def module_in_packages(module: str, packages) -> bool:
    """Whether dotted ``module`` lives under any of the dotted ``packages``."""
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


def _dtype_from_node(node: ast.AST) -> Optional[str]:
    name = astutil.dotted_name(node)
    if name is not None:
        return _DTYPE_NAMES.get(name.split(".")[-1])
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_NAMES.get(node.value)
    return None


def _dim_product(left: Dim, right: Dim) -> Dim:
    if left is None or right is None:
        return None
    if isinstance(left, int) and isinstance(right, int):
        return left * right
    factors: list = []
    for part in (left, right):
        factors.extend(str(part).split("*"))
    return "*".join(sorted(factors))


def _canonical_factors(dims) -> Optional[tuple]:
    """(int product, sorted symbol factors) of a fully-known shape."""
    if dims is None:
        return None
    number = 1
    symbols: list = []
    for dim in dims:
        if dim is None:
            return None
        if isinstance(dim, int):
            if dim < 0:
                return None
            number *= dim
        else:
            symbols.extend(str(dim).split("*"))
    return number, tuple(sorted(symbols))


def _broadcast(a: Optional[tuple], b: Optional[tuple]) -> Optional[tuple]:
    if a is None or b is None:
        return None
    if len(a) < len(b):
        a, b = b, a
    padded = (None,) * (len(a) - len(b)) + tuple(b)
    out: list = []
    for da, db in zip(a, padded):
        if da == db:
            out.append(da)
        elif db in (1, None):
            out.append(da)
        elif da in (1, None):
            out.append(db)
        else:
            out.append(None)  # conflicting dims: stay silent, lose precision
    return tuple(out)


def _value_from_spec(spec: TensorSpec) -> AbstractValue:
    if spec.dim_value is not None:
        return AbstractValue(dim=spec.dim_value)
    if spec.dims is not None and len(spec.dims) > 0:
        return AbstractValue(shape=tuple(spec.dims), dtype=spec.dtype)
    if spec.dims is None and spec.dtype is not None:
        return AbstractValue(dtype=spec.dtype)  # dtype-only contract
    return UNKNOWN


class _FunctionAnalyzer:
    """Interprets one annotated function body."""

    def __init__(self, project, summary, context, qualname, spec, node):
        self.project = project
        self.summary = summary
        self.context = context
        self.qualname = qualname
        self.spec = spec
        self.node = node
        self.env: dict[str, AbstractValue] = {}
        self.diagnostics: list[Diagnostic] = []
        self._call_counter = 0

    # ------------------------------------------------------------------
    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", self.node.lineno)
        col = getattr(node, "col_offset", 0)
        if self.context.is_suppressed(rule_id, line):
            return
        self.diagnostics.append(
            Diagnostic(rule_id, self.summary.path, line, col, message)
        )

    def run(self) -> None:
        """Bind parameter specs and interpret the body."""
        params = self.spec.param_map()
        arg_nodes = list(self.node.args.posonlyargs) + list(self.node.args.args)
        arg_nodes += list(self.node.args.kwonlyargs)
        for arg in arg_nodes:
            spec = params.get(arg.arg)
            if spec is not None:
                self.env[arg.arg] = _value_from_spec(spec)
        self.exec_body(self.node.body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_body(self, body) -> None:
        for statement in body:
            self.exec_stmt(statement)

    def exec_stmt(self, statement: ast.AST) -> None:
        if isinstance(statement, ast.Assign):
            value = self.eval(statement.value)
            for target in statement.targets:
                self.assign(target, value, statement.value)
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            self.assign(
                statement.target, self.eval(statement.value), statement.value
            )
        elif isinstance(statement, ast.AugAssign):
            value = self.eval(
                ast.BinOp(statement.target, statement.op, statement.value)
            )
            self.assign(statement.target, value, statement.value)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self.check_return(statement)
        elif isinstance(statement, ast.Expr):
            self.eval(statement.value)
        elif isinstance(statement, (ast.If, ast.For, ast.While, ast.With)):
            if isinstance(statement, ast.For):
                self.assign(statement.target, UNKNOWN, statement.iter)
                self.eval(statement.iter)
            if isinstance(statement, ast.While):
                self.eval(statement.test)
            if isinstance(statement, ast.If):
                self.eval(statement.test)
            self.exec_body(statement.body)
            self.exec_body(getattr(statement, "orelse", []))
        elif isinstance(statement, ast.Try):
            self.exec_body(statement.body)
            for handler in statement.handlers:
                self.exec_body(handler.body)
            self.exec_body(statement.orelse)
            self.exec_body(statement.finalbody)
        # Nested defs/classes are opaque: their calls evaluate to unknown.

    def assign(self, target: ast.AST, value: AbstractValue, source: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = value.items
            if items is None and isinstance(source, ast.Tuple):
                items = tuple(self.eval(element) for element in source.elts)
            for index, element in enumerate(target.elts):
                if isinstance(element, ast.Name):
                    if items is not None and index < len(items):
                        self.env[element.id] = items[index]
                    else:
                        self.env[element.id] = UNKNOWN

    def check_return(self, statement: ast.Return) -> None:
        declared = self.spec.returns
        value = self.eval(statement.value)
        if (
            declared is None
            or declared.dims is None
            or len(declared.dims) == 0
            or value.shape is None
        ):
            return
        if not unify_shape(tuple(declared.dims), value.shape, {}):
            self.report(
                "wp-shape-mismatch",
                statement,
                f"{self.qualname} returns {format_shape(value.shape)} but its "
                f"Shapes section declares {format_shape(tuple(declared.dims))}",
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, node: ast.AST) -> AbstractValue:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return AbstractValue(dim=node.value)
            return UNKNOWN
        if isinstance(node, ast.Tuple):
            return AbstractValue(
                items=tuple(self.eval(element) for element in node.elts)
            )
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand)
            if isinstance(node.op, ast.USub) and isinstance(inner.dim, int):
                return AbstractValue(dim=-inner.dim)
            return inner if inner.shape is not None else UNKNOWN
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.IfExp):
            left, right = self.eval(node.body), self.eval(node.orelse)
            if left.shape is not None and left.shape == right.shape:
                return left
            return UNKNOWN
        return UNKNOWN

    def eval_attribute(self, node: ast.Attribute) -> AbstractValue:
        base = self.eval(node.value)
        if node.attr == "data":
            return base
        if node.attr == "T" and base.shape is not None:
            return AbstractValue(tuple(reversed(base.shape)), base.dtype)
        if node.attr == "shape" and base.shape is not None:
            return AbstractValue(
                items=tuple(AbstractValue(dim=d) for d in base.shape)
            )
        return UNKNOWN

    def eval_subscript(self, node: ast.Subscript) -> AbstractValue:
        base = self.eval(node.value)
        index = node.slice
        if base.items is not None:
            if isinstance(index, ast.Constant) and isinstance(index.value, int):
                if -len(base.items) <= index.value < len(base.items):
                    return base.items[index.value]
            return UNKNOWN
        if base.shape is not None:
            if isinstance(index, ast.Constant) and isinstance(index.value, int):
                return AbstractValue(base.shape[1:], base.dtype)
        return UNKNOWN

    def eval_binop(self, node: ast.BinOp) -> AbstractValue:
        left, right = self.eval(node.left), self.eval(node.right)
        if isinstance(node.op, ast.MatMult):
            return self.eval_matmul(node, left, right)
        if isinstance(node.op, ast.Mult) and left.dim is not None and right.dim is not None:
            return AbstractValue(dim=_dim_product(left.dim, right.dim))
        if left.shape is not None or right.shape is not None:
            if left.shape is not None and right.shape is not None:
                shape = _broadcast(left.shape, right.shape)
            else:
                shape = left.shape if left.shape is not None else right.shape
            dtype = left.dtype if left.dtype is not None else right.dtype
            return AbstractValue(shape, dtype)
        if isinstance(node.op, (ast.FloorDiv, ast.Div)) and (
            left.dim is not None and right.dim is not None
        ):
            if isinstance(left.dim, int) and isinstance(right.dim, int):
                if right.dim != 0 and left.dim % right.dim == 0:
                    return AbstractValue(dim=left.dim // right.dim)
                return UNKNOWN
            return AbstractValue(dim=f"({left.dim}//{right.dim})")
        return UNKNOWN

    def eval_matmul(
        self, node: ast.BinOp, left: AbstractValue, right: AbstractValue
    ) -> AbstractValue:
        a, b = left.shape, right.shape
        if a is None or b is None or len(a) == 0 or len(b) == 0:
            return UNKNOWN
        dtype = left.dtype if left.dtype is not None else right.dtype
        if len(a) == 1 and len(b) == 1:
            self.check_inner(node, a[0], b[0])
            return AbstractValue((), dtype)
        if len(a) == 1:
            self.check_inner(node, a[0], b[-2])
            return AbstractValue(b[:-2] + (b[-1],), dtype)
        if len(b) == 1:
            self.check_inner(node, a[-1], b[0])
            return AbstractValue(a[:-1], dtype)
        self.check_inner(node, a[-1], b[-2])
        batch = _broadcast(a[:-2], b[:-2]) or ()
        return AbstractValue(batch + (a[-2], b[-1]), dtype)

    def check_inner(self, node: ast.AST, inner_a: Dim, inner_b: Dim) -> None:
        if not unify_dim(inner_a, inner_b, {}):
            self.report(
                "wp-shape-mismatch",
                node,
                f"matmul inner dimensions disagree: {inner_a} vs {inner_b} "
                "(left operand's last dim must equal right operand's "
                "second-to-last)",
            )

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _dims_from_args(self, nodes) -> Optional[tuple]:
        """Dim tuple from reshape/zeros-style arguments, None if opaque."""
        if len(nodes) == 1:
            single = self.eval(nodes[0])
            if single.items is not None:
                values = single.items
            elif single.dim is not None:
                values = (single,)
            else:
                return None
        else:
            values = tuple(self.eval(item) for item in nodes)
        dims: list = []
        for value in values:
            if isinstance(value.dim, int) and value.dim < 0:
                dims.append(None)  # -1: inferred by numpy, unknown to us
            else:
                dims.append(value.dim)
        return tuple(dims)

    def eval_call(self, node: ast.Call) -> AbstractValue:
        numpy_name = astutil.numpy_call_name(node)
        if numpy_name is not None:
            return self.eval_numpy_call(node, numpy_name)
        # Method calls first: the receiver may itself be a call
        # (``np.zeros(...).astype(...)``), which has no dotted name.
        if isinstance(node.func, ast.Attribute):
            method = self.eval_method_call(node)
            if method is not None:
                return method
        name = astutil.call_name(node)
        if name is None:
            return UNKNOWN
        # Tensor(x) and Tensor.as_tensor(x) wrap without reshaping.
        if name.split(".")[-1] in {"Tensor", "as_tensor"} and node.args:
            return self.eval(node.args[0])
        resolved = self.project.resolve_function(self.summary.module, name)
        if resolved is not None:
            return self.check_project_call(node, *resolved)
        return UNKNOWN

    def eval_numpy_call(self, node: ast.Call, numpy_name: str) -> AbstractValue:
        args = node.args
        if numpy_name in {"zeros", "ones", "empty", "full"} and args:
            dims = self._dims_from_args(args[:1])
            dtype = "f64"
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype = _dtype_from_node(keyword.value) or None
            return AbstractValue(dims, dtype) if dims is not None else UNKNOWN
        if numpy_name in {"zeros_like", "ones_like", "empty_like"} and args:
            return self.eval(args[0])
        if numpy_name in {"asarray", "array"} and args:
            value = self.eval(args[0])
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    converted = _dtype_from_node(keyword.value)
                    if converted:
                        return AbstractValue(value.shape, converted)
            return value
        if numpy_name in _ELEMENTWISE_NP and args:
            return self.eval(args[0])
        if numpy_name == "where" and len(args) == 3:
            left, right = self.eval(args[1]), self.eval(args[2])
            if left.shape is not None and right.shape is not None:
                return AbstractValue(
                    _broadcast(left.shape, right.shape), left.dtype or right.dtype
                )
            return UNKNOWN
        if numpy_name == "matmul" and len(args) == 2:
            return self.eval_matmul(
                ast.BinOp(args[0], ast.MatMult(), args[1]),
                self.eval(args[0]),
                self.eval(args[1]),
            )
        if numpy_name == "swapaxes" and len(args) == 3:
            return self._swapaxes(self.eval(args[0]), args[1], args[2])
        if numpy_name == "transpose" and args:
            return self._transpose(node, self.eval(args[0]), args[1:])
        if numpy_name == "outer" and len(args) == 2:
            left, right = self.eval(args[0]), self.eval(args[1])
            if (
                left.shape is not None
                and right.shape is not None
                and len(left.shape) == 1
                and len(right.shape) == 1
            ):
                return AbstractValue(
                    (left.shape[0], right.shape[0]), left.dtype or right.dtype
                )
            return UNKNOWN
        if numpy_name == "broadcast_to" and len(args) == 2:
            dims = self._dims_from_args(args[1:2])
            value = self.eval(args[0])
            return AbstractValue(dims, value.dtype) if dims else UNKNOWN
        if numpy_name in {"sum", "mean"} and args:
            return self._reduce(node, self.eval(args[0]), node_args=args[1:])
        if numpy_name == "trace" and args:
            return AbstractValue((), self.eval(args[0]).dtype)
        if numpy_name == "expand_dims" and len(args) == 2:
            value = self.eval(args[0])
            axis = self.eval(args[1]).dim
            if value.shape is not None and isinstance(axis, int):
                rank = len(value.shape) + 1
                if -rank <= axis < rank:
                    position = axis % rank
                    shape = (
                        value.shape[:position] + (1,) + value.shape[position:]
                    )
                    return AbstractValue(shape, value.dtype)
            return UNKNOWN
        if numpy_name in _DTYPE_NAMES and args:
            value = self.eval(args[0])
            return AbstractValue(value.shape, _DTYPE_NAMES[numpy_name])
        return UNKNOWN

    def _swapaxes(self, value: AbstractValue, ax1: ast.AST, ax2: ast.AST):
        a1, a2 = self.eval(ax1).dim, self.eval(ax2).dim
        if (
            value.shape is None
            or not isinstance(a1, int)
            or not isinstance(a2, int)
        ):
            return UNKNOWN
        rank = len(value.shape)
        if not (-rank <= a1 < rank and -rank <= a2 < rank):
            return UNKNOWN
        dims = list(value.shape)
        dims[a1], dims[a2] = dims[a2], dims[a1]
        return AbstractValue(tuple(dims), value.dtype)

    def _transpose(self, node: ast.AST, value: AbstractValue, axis_nodes):
        if value.shape is None:
            return UNKNOWN
        if not axis_nodes:
            return AbstractValue(tuple(reversed(value.shape)), value.dtype)
        dims = self._dims_from_args(list(axis_nodes))
        if dims is None or not all(isinstance(d, int) for d in dims):
            return UNKNOWN
        rank = len(value.shape)
        if sorted(d % rank for d in dims if -rank <= d < rank) != list(range(rank)):
            return UNKNOWN
        return AbstractValue(
            tuple(value.shape[d % rank] for d in dims), value.dtype
        )

    def _reduce(self, node: ast.Call, value: AbstractValue, node_args=()):
        if value.shape is None:
            return UNKNOWN
        axis = None
        keepdims = False
        positional = list(node_args)
        if positional:
            axis_value = self.eval(positional[0]).dim
            axis = axis_value if isinstance(axis_value, int) else "opaque"
        for keyword in node.keywords:
            if keyword.arg == "axis":
                if isinstance(keyword.value, ast.Constant):
                    axis = (
                        keyword.value.value
                        if isinstance(keyword.value.value, int)
                        else "opaque"
                    )
                elif isinstance(keyword.value, ast.Tuple):
                    axis = "tuple"
                else:
                    axis = "opaque"
            elif keyword.arg == "keepdims":
                keepdims = (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        if axis is None:
            return AbstractValue((), value.dtype)
        if not isinstance(axis, int):
            return UNKNOWN
        rank = len(value.shape)
        if not -rank <= axis < rank:
            return UNKNOWN
        position = axis % rank
        if keepdims:
            shape = value.shape[:position] + (1,) + value.shape[position + 1 :]
        else:
            shape = value.shape[:position] + value.shape[position + 1 :]
        return AbstractValue(shape, value.dtype)

    def eval_method_call(self, node: ast.Call) -> Optional[AbstractValue]:
        method = node.func.attr
        base = self.eval(node.func.value)
        if base.shape is None and base.items is None:
            return None
        if method == "astype" and node.args:
            converted = _dtype_from_node(node.args[0])
            return AbstractValue(base.shape, converted or base.dtype)
        if method == "copy":
            return base
        if method == "reshape":
            dims = self._dims_from_args(node.args)
            if dims is None:
                return UNKNOWN
            before = _canonical_factors(base.shape)
            after = _canonical_factors(dims)
            if before is not None and after is not None and before != after:
                self.report(
                    "wp-shape-mismatch",
                    node,
                    f"reshape from {format_shape(base.shape)} to "
                    f"{format_shape(dims)} changes the symbolic element count",
                )
            return AbstractValue(dims, base.dtype)
        if method == "transpose":
            return self._transpose(node, base, node.args)
        if method == "swapaxes" and len(node.args) == 2:
            return self._swapaxes(base, node.args[0], node.args[1])
        if method in {"sum", "mean", "max", "min"}:
            return self._reduce(node, base, node_args=node.args)
        if method == "ravel":
            factors = _canonical_factors(base.shape)
            if factors is None:
                return UNKNOWN
            number, symbols = factors
            if not symbols:
                return AbstractValue((number,), base.dtype)
            if number == 1:
                return AbstractValue(("*".join(symbols),), base.dtype)
            return AbstractValue((None,), base.dtype)
        if method == "item":
            return AbstractValue((), base.dtype)
        return None

    def check_project_call(
        self, node: ast.Call, callee_module: str, qualname: str, spec
    ) -> AbstractValue:
        from repro.analysis.rules.autograd import DTYPE_NARROWING_ALLOWED

        self._call_counter += 1
        prefix = f"{node.lineno}.{self._call_counter}"
        bindings: dict = {}
        params = list(spec.params)
        supplied: list = []
        for position, arg in enumerate(node.args):
            if position < len(params):
                supplied.append((params[position][0], params[position][1], arg))
        by_name = spec.param_map()
        for keyword in node.keywords:
            if keyword.arg in by_name:
                supplied.append((keyword.arg, by_name[keyword.arg], keyword.value))

        caller_allowed = module_in_packages(
            self.summary.module, DTYPE_NARROWING_ALLOWED
        )
        for param_name, param_spec, arg_node in supplied:
            value = self.eval(arg_node)
            if param_spec.dims is not None and len(param_spec.dims) > 0:
                if value.shape is not None:
                    declared = instantiate(param_spec.dims, prefix)
                    if not unify_shape(declared, value.shape, bindings):
                        self.report(
                            "wp-shape-mismatch",
                            arg_node,
                            f"argument {param_name!r} to {qualname}: declared "
                            f"{format_shape(tuple(param_spec.dims))}, got "
                            f"{format_shape(value.shape)} (dims must agree "
                            "across arguments)",
                        )
            elif param_spec.dim_value is not None and value.dim is not None:
                unify_dim(
                    instantiate((param_spec.dim_value,), prefix)[0],
                    value.dim,
                    bindings,
                )
            if (
                not caller_allowed
                and value.dtype in DTYPE_ORDER
                and param_spec.dtype in DTYPE_ORDER
                and value.dtype != param_spec.dtype
            ):
                if is_narrowing(value.dtype, param_spec.dtype):
                    detail = (
                        "keep the autograd-visible pipeline float64 and "
                        "narrow only at the storage boundary"
                    )
                else:
                    detail = (
                        "the value was narrowed upstream; convert back to "
                        f"{param_spec.dtype} before crossing this boundary"
                    )
                self.report(
                    "wp-dtype-narrowing",
                    arg_node,
                    f"passing {value.dtype} data into parameter "
                    f"{param_name!r} of {qualname}, declared "
                    f"{param_spec.dtype}; {detail}",
                )

        returns = spec.returns
        if returns is None:
            return UNKNOWN
        if (
            callee_module != self.summary.module
            and not caller_allowed
            and returns.dtype in ("f32", "f16")
        ):
            self.report(
                "wp-dtype-narrowing",
                node,
                f"call to {qualname} (module {callee_module}) returns "
                f"{returns.dtype} into float64 autograd-visible code; "
                "convert back or move this call behind the storage boundary",
            )
        if returns.dim_value is not None:
            value = self._concretize(
                instantiate((returns.dim_value,), prefix)[0], bindings
            )
            return AbstractValue(dim=value)
        if returns.dims is None:
            if returns.dtype is not None:
                return AbstractValue(dtype=returns.dtype)
            return UNKNOWN
        resolved = instantiate(returns.dims, prefix)
        concrete = tuple(
            self._concretize(dim, bindings) for dim in resolved
        )
        return AbstractValue(concrete, returns.dtype)

    @staticmethod
    def _concretize(dim: Dim, bindings: dict) -> Dim:
        from repro.analysis.shapes import _resolve, _is_var

        resolved = _resolve(dim, bindings)
        if isinstance(resolved, str) and _is_var(resolved):
            return None
        if isinstance(resolved, str) and "$" in resolved:
            return None
        return resolved


def analyze_module_dataflow(project, summary, context):
    """Interpret every annotated function in one module.

    Returns ``(diagnostics, used_suppressions)``; diagnostics carry the
    driver-managed ids ``wp-shape-mismatch`` / ``wp-dtype-narrowing``.
    """
    diagnostics: list = []
    index = {}

    def collect(body, prefix):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index[prefix + node.name] = node
            elif isinstance(node, ast.ClassDef):
                collect(node.body, prefix + node.name + ".")

    collect(context.tree.body, "")
    for qualname, spec in summary.specs.items():
        node = index.get(qualname)
        if node is None:
            continue
        analyzer = _FunctionAnalyzer(
            project, summary, context, qualname, spec, node
        )
        analyzer.run()
        diagnostics.extend(analyzer.diagnostics)
    return diagnostics, context.used_suppressions()


class _DriverManagedRule(WholeProgramRule):
    """Registered for identity/--list-rules; executed by the project driver.

    The dataflow pass runs per module inside :meth:`Project.analyze` so its
    results can be cached incrementally; these registry entries only give
    its diagnostics first-class rule ids.
    """

    driver_managed = True

    def check(self, project) -> Iterator[Diagnostic]:
        """Yield nothing; the driver emits this rule's diagnostics."""
        return iter(())


for _rule_id, _summary in (
    (
        "wp-shape-mismatch",
        "symbolic shape conflict: matmul/reshape/call-signature disagreement",
    ),
    (
        "wp-dtype-narrowing",
        "float64 pipeline value narrowed to f32/f16 across a function boundary",
    ),
):
    wprule(_rule_id, _summary)(_DriverManagedRule)


@wprule(
    "wp-bad-shape-spec",
    "Shapes: docstring section that does not parse",
)
def _bad_shape_spec(self: Rule, project) -> Iterator[Diagnostic]:
    for summary in project.summaries(include_consumers=False):
        for line, message in summary.spec_errors:
            yield Diagnostic(self.id, summary.path, line, 0, message)
