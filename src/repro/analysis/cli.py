"""Command-line driver: ``python -m repro.analysis`` / ``repro-lint``.

Exit status is 0 when the tree is clean, 1 when violations were found, and
2 on usage errors — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from repro.analysis.core import all_rules, analyze_paths
from repro.analysis.reporters import render_json, render_text

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific static analysis (numeric-safety, "
        "autograd-contract, and API-hygiene rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer; returns the process exit status."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for registered in all_rules():
            print(f"{registered.id:28s} {registered.summary}")
        return 0

    missing = [p for p in options.paths if not pathlib.Path(p).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    select = None
    if options.select is not None:
        select = [name.strip() for name in options.select.split(",") if name.strip()]
    try:
        diagnostics = analyze_paths(options.paths, select=select)
    except KeyError as error:
        print(f"repro-lint: {error.args[0]}", file=sys.stderr)
        return 2

    renderer = render_json if options.format == "json" else render_text
    print(renderer(diagnostics))
    return 1 if diagnostics else 0
