"""Command-line driver: ``python -m repro.analysis`` / ``repro-lint``.

Exit status is 0 when the tree is clean, 1 when violations were found, and
2 on usage errors — so CI can gate on it directly.  Warnings (e.g. stale
suppression pragmas) are reported but only fail the run under ``--strict``.

Two analysis modes:

* per-module (default) — each file is linted in isolation;
* ``--whole-program`` — files are loaded into a project, enabling the
  cross-module passes (import cycles, dead exports, symbolic shape/dtype
  dataflow, autograd op contracts) plus an incremental cache keyed by
  content hash, so warm runs re-analyze only modified files.
"""

from __future__ import annotations

import argparse
import fnmatch
import pathlib
import sys
from typing import Optional, Sequence

from repro.analysis.core import (
    all_rule_ids,
    all_rules,
    all_wp_rules,
    analyze_paths,
)
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_text,
    severity_counts,
)

__all__ = ["build_parser", "main", "DEFAULT_CONSUMERS", "DEFAULT_CACHE_PATH"]

#: Trees whose references count as API usage but which are never linted.
DEFAULT_CONSUMERS = ("tests", "examples", "benchmarks", "tools")

#: Default location of the incremental whole-program cache.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"

_SYNTHETIC_DOCS = {
    "syntax-error": "file does not parse; reported instead of aborting",
    "lint-unused-suppression": (
        "stale # lint: disable= pragma that suppressed nothing (warning)"
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific static analysis (numeric-safety, "
        "autograd-contract, API-hygiene, and whole-program rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to report; glob patterns such as "
        "'wp-*' expand against the registered ids (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id with its one-line doc and exit",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="enable the cross-module passes (import graph, symbolic "
        "shapes, autograd contracts) and the incremental cache",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (e.g. stale suppressions) as failures",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="print the inferred per-function effect table instead of "
        "diagnostics (whole-program mode)",
    )
    parser.add_argument(
        "--ranges",
        action="store_true",
        help="print the declared/inferred integer-range table instead of "
        "diagnostics (whole-program mode)",
    )
    parser.add_argument(
        "--list-specs",
        action="store_true",
        help="list every Shapes:/Bits: annotated function with coverage "
        "counts and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="fan the per-module passes out over N forked workers "
        "(whole-program mode; bit-identical to serial, small runs "
        "auto-serialize)",
    )
    parser.add_argument(
        "--consumers",
        metavar="PATHS",
        default=",".join(DEFAULT_CONSUMERS),
        help="comma-separated trees whose references count as API usage "
        "but are never linted (whole-program mode; nonexistent entries "
        f"are skipped; default: {','.join(DEFAULT_CONSUMERS)})",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=DEFAULT_CACHE_PATH,
        help="incremental cache file for whole-program runs "
        f"(default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analyzed/cached file counts to stderr "
        "(whole-program mode)",
    )
    return parser


def _list_rules() -> None:
    for registered in all_rules():
        print(f"{registered.id:28s} {registered.summary}")
    for registered in all_wp_rules():
        print(f"{registered.id:28s} [whole-program] {registered.summary}")
    for rule_id, doc in sorted(_SYNTHETIC_DOCS.items()):
        print(f"{rule_id:28s} [synthetic] {doc}")


def _list_specs(paths) -> None:
    """Enumerate every ``Shapes:``/``Bits:``-annotated function."""
    from repro.analysis.project import Project

    project = Project.load(paths, ())
    rows: list = []
    shapes_count = bits_count = 0
    modules: set = set()
    for summary in project.summaries(include_consumers=False):
        annotated: dict = {}
        for qualname, spec in summary.specs.items():
            annotated.setdefault(qualname, [spec.line, []])[1].append("shapes")
        for qualname, spec in summary.bit_specs.items():
            annotated.setdefault(qualname, [spec.line, []])[1].append("bits")
        for qualname, (line, kinds) in annotated.items():
            shapes_count += "shapes" in kinds
            bits_count += "bits" in kinds
            modules.add(summary.module)
            rows.append(
                (
                    summary.path,
                    line,
                    f"{summary.path}:{line}: {summary.module}.{qualname} "
                    f"[{','.join(sorted(kinds))}]",
                )
            )
    for _, _, text in sorted(rows):
        print(text)
    print(
        f"{len(rows)} annotated functions across {len(modules)} modules "
        f"({shapes_count} with Shapes:, {bits_count} with Bits:)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer; returns the process exit status."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        _list_rules()
        return 0

    missing = [p for p in options.paths if not pathlib.Path(p).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if options.list_specs:
        _list_specs(options.paths)
        return 0

    if (
        options.effects or options.ranges or options.jobs
    ) and not options.whole_program:
        if options.effects:
            flag = "--effects"
        elif options.ranges:
            flag = "--ranges"
        else:
            flag = "--jobs"
        print(f"repro-lint: {flag} requires --whole-program", file=sys.stderr)
        return 2
    if options.jobs < 0:
        print("repro-lint: --jobs must be non-negative", file=sys.stderr)
        return 2

    select = None
    if options.select is not None:
        requested = [
            name.strip() for name in options.select.split(",") if name.strip()
        ]
        known = all_rule_ids(whole_program=options.whole_program)
        expanded: list = []
        unknown: list = []
        for name in requested:
            if any(char in name for char in "*?["):
                matches = fnmatch.filter(sorted(known), name)
                if matches:
                    expanded.extend(matches)
                else:
                    unknown.append(name)
            elif name in known:
                expanded.append(name)
            else:
                unknown.append(name)
        if unknown:
            print(
                f"repro-lint: unknown rule ids: {sorted(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        select = sorted(set(expanded))

    if options.whole_program:
        from repro.analysis.cache import AnalysisCache
        from repro.analysis.project import Project

        cache = None
        if not options.no_cache:
            cache = AnalysisCache(options.cache)
        consumers = [
            entry.strip()
            for entry in options.consumers.split(",")
            if entry.strip() and pathlib.Path(entry.strip()).exists()
        ]
        project = Project.load(options.paths, consumers, cache=cache)
        if options.effects:
            from repro.analysis.effects import render_effects

            print(render_effects(project.effect_summaries()))
            return 0
        if options.ranges:
            from repro.analysis.ranges import render_ranges

            print(render_ranges(project))
            return 0
        diagnostics = project.analyze(select=select, jobs=options.jobs)
        if options.stats:
            line = (
                "repro-lint: analyzed {analyzed} files "
                "({cached} from cache)".format(**project.stats)
            )
            if "jobs_mode" in project.stats:
                line += (
                    f"; jobs={options.jobs} ({project.stats['jobs_mode']})"
                )
            print(line, file=sys.stderr)
    else:
        try:
            diagnostics = analyze_paths(options.paths, select=select)
        except KeyError as error:
            print(f"repro-lint: {error.args[0]}", file=sys.stderr)
            return 2

    renderer = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[options.format]
    print(renderer(diagnostics))
    errors, warnings = severity_counts(diagnostics)
    if errors or (options.strict and warnings):
        return 1
    return 0
