"""Incremental analysis cache: skip unchanged files on warm runs.

Entries are keyed by file path and validated by an ``(mtime_ns, size)``
fast path backed by a SHA-256 content hash — touching a file without
changing it stays a cache hit; editing it is always a miss.  The whole
cache is additionally fingerprinted by the registered rule set and an
analysis-version constant, so upgrading the analyzer invalidates
everything at once.

The file format is a single JSON document; a corrupt or incompatible cache
file is treated as empty rather than raised.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

__all__ = ["ANALYSIS_VERSION", "AnalysisCache", "rules_fingerprint"]

#: Bump when diagnostics or summary layout change shape.
ANALYSIS_VERSION = 4


def rules_fingerprint() -> str:
    """Digest of the registered rule ids plus the analysis version."""
    from repro.analysis.core import all_rule_ids

    blob = json.dumps([ANALYSIS_VERSION, sorted(all_rule_ids())])
    return hashlib.sha256(blob.encode()).hexdigest()


class AnalysisCache:
    """On-disk cache mapping file paths to summaries and diagnostics."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.fingerprint = rules_fingerprint()
        self._entries: dict = {}
        self._dirty = False
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
            except (OSError, ValueError):
                payload = {}
            if payload.get("fingerprint") == self.fingerprint:
                self._entries = payload.get("entries", {})

    # ------------------------------------------------------------------
    @staticmethod
    def _digest(path: str) -> str:
        return hashlib.sha256(Path(path).read_bytes()).hexdigest()

    def lookup(self, path: str):
        """Return ``(entry, digest)``; ``entry`` is None on a cache miss.

        The returned ``digest`` is reused by :meth:`store` so a miss does
        not hash the file twice (and a fast-path hit not at all).
        """
        entry = self._entries.get(path)
        try:
            stat = os.stat(path)
        except OSError:
            return None, None
        if entry is not None:
            if (
                entry.get("mtime_ns") == stat.st_mtime_ns
                and entry.get("size") == stat.st_size
            ):
                return entry, entry.get("sha256")
            digest = self._digest(path)
            if entry.get("sha256") == digest:
                # Content unchanged, stat drifted (e.g. checkout): refresh.
                entry["mtime_ns"] = stat.st_mtime_ns
                entry["size"] = stat.st_size
                self._dirty = True
                return entry, digest
            return None, digest
        return None, None

    def store(self, path: str, digest: Optional[str], payload: dict) -> None:
        """Record ``payload`` for ``path`` (hashing the file if needed)."""
        try:
            stat = os.stat(path)
        except OSError:
            return
        entry = dict(payload)
        entry["sha256"] = digest or self._digest(path)
        entry["mtime_ns"] = stat.st_mtime_ns
        entry["size"] = stat.st_size
        previous = self._entries.get(path)
        if previous != entry:
            self._entries[path] = entry
            self._dirty = True

    def save(self) -> None:
        """Write the cache back to disk if anything changed."""
        if not self._dirty:
            return
        payload = {
            "fingerprint": self.fingerprint,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload))
        self._dirty = False
