"""Repo-specific static analysis for the APTQ reproduction.

An AST-based lint framework with rules that encode the repo's numeric and
autograd invariants (stabilized ``exp``/``log``, ``sink``-routed backward
closures, float64-only differentiation) plus general API hygiene, and a
whole-program layer (``--whole-program``) that builds a cross-module
project model to check import cycles, dead exports, symbolic tensor
shapes/dtypes, and interprocedural autograd contracts.  See
``docs/ANALYSIS.md`` for the rule catalogue, suppression syntax, and the
``Shapes:`` annotation convention.

Usage::

    python -m repro.analysis src/repro            # lint the library
    repro-lint --whole-program --strict src/repro # full pre-merge gate
    repro-lint --format sarif src/repro           # code-scanning upload
"""

from repro.analysis.core import (
    Diagnostic,
    ModuleContext,
    Rule,
    WholeProgramRule,
    all_rule_ids,
    all_rules,
    all_wp_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    get_rule,
    iter_python_files,
    rule,
    wprule,
)
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = [
    "Diagnostic",
    "ModuleContext",
    "Rule",
    "WholeProgramRule",
    "all_rule_ids",
    "all_rules",
    "all_wp_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "iter_python_files",
    "rule",
    "wprule",
    "render_json",
    "render_sarif",
    "render_text",
]
