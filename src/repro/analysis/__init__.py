"""Repo-specific static analysis for the APTQ reproduction.

An AST-based lint framework with rules that encode the repo's numeric and
autograd invariants (stabilized ``exp``/``log``, ``sink``-routed backward
closures, float64-only differentiation) plus general API hygiene.  See
``docs/ANALYSIS.md`` for the rule catalogue and suppression syntax.

Usage::

    python -m repro.analysis src/repro            # lint the library
    repro-lint --format json src/repro            # machine-readable report
"""

from repro.analysis.core import (
    Diagnostic,
    ModuleContext,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    get_rule,
    iter_python_files,
    rule,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Diagnostic",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "iter_python_files",
    "rule",
    "render_json",
    "render_text",
]
