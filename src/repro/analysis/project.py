"""Whole-program model: module summaries, the project loader, and driver.

A :class:`Project` owns one :class:`ModuleSummary` per python file reachable
from its roots.  Summaries are small, serializable extracts of everything
the whole-program passes need — exports, imports, dotted references,
suppression pragmas, ``Shapes:`` signatures, and ``Tensor.make`` op records
— so that a warm run can skip parsing unchanged files entirely (see
:mod:`repro.analysis.cache`).

Two kinds of paths feed a project:

* **roots** (``src/repro``) — modules that are analyzed and reported on;
* **consumers** (``tests``, ``examples``, ``benchmarks``, ``tools``) —
  modules whose *references* count as API usage (so a symbol imported only
  by a test is not a dead export) but which are never linted themselves.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis import astutil
from repro.analysis.aliasing import EscapeRecord, collect_escapes
from repro.analysis.core import (
    Diagnostic,
    ModuleContext,
    all_rules,
    all_wp_rules,
    iter_python_files,
    unused_suppression_diagnostics,
)
from repro.analysis.effects import (
    FunctionRecord,
    collect_function_records,
    infer_effects,
)
from repro.analysis.ranges import BitsFunctionSpec, collect_bits_specs
from repro.analysis.shapes import FunctionSpec, parse_docstring_spec

__all__ = [
    "ImportRecord",
    "OpRecord",
    "ModuleSummary",
    "ModuleRecord",
    "Project",
    "build_summary",
    "ANALYSIS_JOBS_MIN_FILES",
]

#: Below this many files needing analysis, ``--jobs`` stays serial — the
#: same fork-overhead argument as the runtime's auto-serial heuristic.
ANALYSIS_JOBS_MIN_FILES = 4


@dataclasses.dataclass(frozen=True)
class ImportRecord:
    """One import binding: ``alias`` names ``module``(.``name``) locally."""

    module: str
    name: Optional[str]
    alias: str
    line: int
    toplevel: bool

    def target(self) -> str:
        """The dotted object the alias is bound to."""
        return f"{self.module}.{self.name}" if self.name else self.module

    def to_json(self) -> list:
        """Serializable form (cache storage)."""
        return [self.module, self.name, self.alias, self.line, self.toplevel]

    @staticmethod
    def from_json(record: list) -> "ImportRecord":
        """Rebuild from :meth:`to_json` output."""
        return ImportRecord(*record)


@dataclasses.dataclass(frozen=True)
class OpRecord:
    """One ``Tensor.make(out, parents, backward)`` site in an op function.

    ``parents`` is the list of parent parameter names when the parents
    tuple is syntactically a tuple of names, else None (dynamic — e.g.
    ``tuple(tensors)``).  ``credited`` are the names passed as first
    argument to the backward closure's ``sink``; ``dynamic_credit`` is set
    when sink is called on a non-name (loop variables), which makes the
    per-parent check inapplicable.
    """

    func: str
    line: int
    make_line: int
    parents: Optional[list]
    credited: list
    dynamic_credit: bool
    has_backward: bool

    def to_json(self) -> dict:
        """Serializable form (cache storage)."""
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(record: dict) -> "OpRecord":
        """Rebuild from :meth:`to_json` output."""
        return OpRecord(**record)


@dataclasses.dataclass
class ModuleSummary:
    """Everything the whole-program passes need to know about one module."""

    module: str
    path: str
    is_consumer: bool
    exports: list  # [name, line] pairs from __all__
    definitions: list  # top-level bound names
    imports: list  # of ImportRecord
    references: list  # raw dotted reference strings
    suppressions: dict  # line -> [rule ids]
    specs: dict  # qualname -> FunctionSpec
    spec_errors: list  # [line, message] pairs
    ops: list  # of OpRecord
    annotations: dict = dataclasses.field(default_factory=dict)
    # name -> identifiers in its annotations/bases (liveness propagation)
    functions: list = dataclasses.field(default_factory=list)
    # of FunctionRecord (effect inference; empty for consumers)
    escapes: list = dataclasses.field(default_factory=list)
    # of EscapeRecord (aliasing pass; empty for consumers)
    bit_specs: dict = dataclasses.field(default_factory=dict)
    # qualname -> BitsFunctionSpec (range/bit-width pass)
    bit_errors: list = dataclasses.field(default_factory=list)
    # [line, message] pairs from malformed Bits: sections

    def to_json(self) -> dict:
        """Serializable form (cache storage)."""
        return {
            "module": self.module,
            "path": self.path,
            "is_consumer": self.is_consumer,
            "exports": self.exports,
            "definitions": self.definitions,
            "imports": [record.to_json() for record in self.imports],
            "references": self.references,
            "suppressions": {str(k): v for k, v in self.suppressions.items()},
            "specs": {k: v.to_json() for k, v in self.specs.items()},
            "spec_errors": self.spec_errors,
            "ops": [record.to_json() for record in self.ops],
            "annotations": self.annotations,
            "functions": [record.to_json() for record in self.functions],
            "escapes": [record.to_json() for record in self.escapes],
            "bit_specs": {k: v.to_json() for k, v in self.bit_specs.items()},
            "bit_errors": self.bit_errors,
        }

    @staticmethod
    def from_json(record: dict) -> "ModuleSummary":
        """Rebuild from :meth:`to_json` output."""
        return ModuleSummary(
            module=record["module"],
            path=record["path"],
            is_consumer=record["is_consumer"],
            exports=[list(entry) for entry in record["exports"]],
            definitions=list(record["definitions"]),
            imports=[ImportRecord.from_json(r) for r in record["imports"]],
            references=list(record["references"]),
            suppressions={
                int(k): list(v) for k, v in record["suppressions"].items()
            },
            specs={
                k: FunctionSpec.from_json(v)
                for k, v in record["specs"].items()
            },
            spec_errors=[list(entry) for entry in record["spec_errors"]],
            ops=[OpRecord.from_json(r) for r in record["ops"]],
            annotations={
                k: list(v) for k, v in record.get("annotations", {}).items()
            },
            functions=[
                FunctionRecord.from_json(r) for r in record.get("functions", [])
            ],
            escapes=[
                EscapeRecord.from_json(r) for r in record.get("escapes", [])
            ],
            bit_specs={
                k: BitsFunctionSpec.from_json(v)
                for k, v in record.get("bit_specs", {}).items()
            },
            bit_errors=[
                list(entry) for entry in record.get("bit_errors", [])
            ],
        )

    def resolved_uses(self) -> set:
        """Dotted names of *other-module* objects this module touches.

        Every from-import target counts as a use; every reference through
        an import alias is rewritten to its fully-dotted form, and all
        prefixes longer than the module path are included so that
        ``gq.group_layers_by_block()`` marks both the function and any
        deeper attribute chain as used.
        """
        uses: set = set()
        by_alias = sorted(self.imports, key=lambda r: -len(r.alias))
        for record in self.imports:
            uses.add(record.module)
            if record.name and record.name != "*":
                uses.add(record.target())
            if record.name == "*":
                uses.add(record.module + ".*")
        for reference in self.references:
            for record in by_alias:
                alias = record.alias
                if reference == alias:
                    uses.add(record.target())
                    break
                if reference.startswith(alias + "."):
                    resolved = record.target() + reference[len(alias):]
                    parts = resolved.split(".")
                    base = len(record.target().split("."))
                    for depth in range(base, len(parts) + 1):
                        uses.add(".".join(parts[:depth]))
                    break
        return uses


# ----------------------------------------------------------------------
# Summary construction
# ----------------------------------------------------------------------
def _collect_exports(tree: ast.Module) -> list:
    exports: list = []
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            exports.append([element.value, element.lineno])
    return exports


def _collect_definitions(tree: ast.Module) -> list:
    names: set = set()
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            names.add(element.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for item in node.names:
                names.add((item.asname or item.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for item in node.names:
                names.add(item.asname or item.name)
    return sorted(names)


def _collect_imports(tree: ast.Module, module: str) -> list:
    toplevel = set(tree.body)
    records: list = []
    for node in ast.walk(tree):
        direct = node in toplevel
        if isinstance(node, ast.Import):
            for item in node.names:
                records.append(
                    ImportRecord(
                        item.name,
                        None,
                        item.asname or item.name,
                        node.lineno,
                        direct,
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = module.split(".")
                base = base[: len(base) - node.level + 1]
                target = ".".join(base + ([node.module] if node.module else []))
            else:
                target = node.module or ""
            for item in node.names:
                records.append(
                    ImportRecord(
                        target,
                        item.name,
                        item.asname or item.name,
                        node.lineno,
                        direct,
                    )
                )
    return records


def _collect_references(tree: ast.Module) -> list:
    references: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            references.add(node.id)
        elif isinstance(node, ast.Attribute):
            dotted = astutil.dotted_name(node)
            if dotted:
                references.add(dotted)
    return sorted(references)


def _collect_specs(tree: ast.Module) -> tuple[dict, list]:
    specs: dict = {}
    errors: list = []

    def visit(body: Iterable[ast.AST], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + node.name
                try:
                    spec = parse_docstring_spec(
                        ast.get_docstring(node), qualname, node.lineno
                    )
                except ValueError as error:
                    errors.append([node.lineno, str(error)])
                    spec = None
                if spec is not None:
                    specs[qualname] = spec
            elif isinstance(node, ast.ClassDef):
                visit(node.body, prefix + node.name + ".")

    visit(tree.body, "")
    return specs, errors


def _collect_annotations(tree: ast.Module) -> dict:
    """Identifiers named by each top-level def/class's annotations and bases.

    Feeds dead-export liveness: a result dataclass that only ever appears as
    ``-> OWQResult`` on a used function, or a base class only named in
    ``class Adam(Optimizer)``, is still reachable API.
    """

    def identifiers(nodes) -> list:
        names: set = set()
        for node in nodes:
            if node is None:
                continue
            for child in ast.walk(node):
                if isinstance(child, ast.Name):
                    names.add(child.id)
        return sorted(names)

    def function_annotations(node) -> list:
        found = [node.returns]
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            found.append(arg.annotation)
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                found.append(arg.annotation)
        return found

    annotations: dict = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names = identifiers(function_annotations(node))
        elif isinstance(node, ast.ClassDef):
            nodes = list(node.bases)
            for child in node.body:
                if isinstance(child, ast.AnnAssign):
                    nodes.append(child.annotation)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nodes.extend(function_annotations(child))
            names = identifiers(nodes)
        else:
            continue
        if names:
            annotations[node.name] = names
    return annotations


def _collect_ops(tree: ast.Module) -> list:
    records: list = []
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        backwards = {
            child.name: child
            for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node
        }
        for call in astutil.walk_calls(node):
            name = astutil.call_name(call)
            if name is None or not name.endswith("Tensor.make"):
                continue
            if len(call.args) < 3:
                records.append(
                    OpRecord(node.name, node.lineno, call.lineno, None, [], False, False)
                )
                continue
            parents_arg, backward_arg = call.args[1], call.args[2]
            parents: Optional[list] = None
            if isinstance(parents_arg, ast.Tuple) and all(
                isinstance(e, ast.Name) for e in parents_arg.elts
            ):
                parents = [e.id for e in parents_arg.elts]
            credited: list = []
            dynamic = False
            has_backward = False
            closure = None
            if isinstance(backward_arg, ast.Name):
                closure = backwards.get(backward_arg.id)
            elif isinstance(backward_arg, ast.Lambda):
                closure = backward_arg
            if closure is not None:
                has_backward = True
                params = (
                    [a.arg for a in closure.args.args]
                    if not isinstance(closure, ast.Lambda)
                    else [a.arg for a in closure.args.args]
                )
                sink_name = params[1] if len(params) == 2 else None
                if sink_name:
                    for inner in astutil.walk_calls(closure):
                        if (
                            isinstance(inner.func, ast.Name)
                            and inner.func.id == sink_name
                            and inner.args
                        ):
                            first = inner.args[0]
                            if isinstance(first, ast.Name):
                                if first.id not in credited:
                                    credited.append(first.id)
                            else:
                                dynamic = True
            records.append(
                OpRecord(
                    node.name,
                    node.lineno,
                    call.lineno,
                    parents,
                    credited,
                    dynamic,
                    has_backward,
                )
            )
    return records


def build_summary(context: ModuleContext, is_consumer: bool) -> ModuleSummary:
    """Extract the whole-program summary of one parsed module."""
    tree = context.tree
    module = context.module_name
    specs, spec_errors = _collect_specs(tree)
    bit_specs, bit_errors = collect_bits_specs(tree)
    return ModuleSummary(
        module=module,
        path=context.path,
        is_consumer=is_consumer,
        exports=_collect_exports(tree),
        definitions=_collect_definitions(tree),
        imports=_collect_imports(tree, module),
        references=_collect_references(tree),
        suppressions={
            line: sorted(names)
            for line, names in context._parse_suppressions(context.lines).items()
        },
        specs=specs,
        spec_errors=spec_errors,
        ops=_collect_ops(tree),
        annotations=_collect_annotations(tree),
        functions=[] if is_consumer else collect_function_records(tree),
        escapes=[] if is_consumer else collect_escapes(tree),
        bit_specs=bit_specs,
        bit_errors=bit_errors,
    )


# ----------------------------------------------------------------------
# Project
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ModuleRecord:
    """Per-file state inside a loaded project."""

    summary: ModuleSummary
    context: Optional[ModuleContext]
    digest: Optional[str]
    analyzed: bool  # parsed during this run (cache miss)
    module_diags: Optional[list] = None  # cached per-module diagnostics
    used_suppressions: Optional[set] = None
    dataflow_diags: Optional[list] = None  # cached dataflow diagnostics
    dataflow_used: Optional[set] = None
    dataflow_key: Optional[str] = None  # spec fingerprint the cache is valid for
    ranges_diags: Optional[list] = None  # cached range-pass diagnostics
    ranges_used: Optional[set] = None
    ranges_key: Optional[str] = None  # spec fingerprint the cache is valid for
    syntax_error: Optional[Diagnostic] = None

    def ensure_context(self) -> Optional[ModuleContext]:
        """Parse the module on demand (cache hits skip parsing up front)."""
        if self.context is None and self.syntax_error is None:
            self.context = ModuleContext(
                self.summary.path, Path(self.summary.path).read_text()
            )
        return self.context


class Project:
    """A set of parsed-or-cached modules plus the whole-program driver."""

    def __init__(self) -> None:
        self.records: dict[str, ModuleRecord] = {}  # keyed by display path
        self.by_module: dict[str, ModuleSummary] = {}
        self.stats = {"analyzed": 0, "cached": 0}
        self._cache = None
        self._uses_index: Optional[dict] = None
        self._effects: Optional[dict] = None

    # ------------------------------------------------------------------
    @staticmethod
    def load(
        roots: Sequence,
        consumers: Sequence = (),
        cache=None,
    ) -> "Project":
        """Build a project from root and consumer paths.

        ``cache`` is an optional :class:`repro.analysis.cache.AnalysisCache`;
        files whose content hash matches a cache entry are summarized from
        the cache without parsing.
        """
        project = Project()
        project._cache = cache
        seen: set = set()
        for group, is_consumer in ((roots, False), (consumers, True)):
            for path in iter_python_files(group):
                key = str(path)
                if key in seen:
                    continue
                seen.add(key)
                project._load_file(path, is_consumer)
        for record in project.records.values():
            project.by_module[record.summary.module] = record.summary
        return project

    def _load_file(self, path: Path, is_consumer: bool) -> None:
        key = str(path)
        entry = digest = None
        if self._cache is not None:
            entry, digest = self._cache.lookup(key)
        if entry is not None:
            summary = ModuleSummary.from_json(entry["summary"])
            record = ModuleRecord(summary, None, digest, analyzed=False)
            if entry.get("module_diags") is not None:
                record.module_diags = [
                    Diagnostic.from_json(d) for d in entry["module_diags"]
                ]
                record.used_suppressions = {
                    (line, rule) for line, rule in entry.get("used_suppr", [])
                }
            if entry.get("dataflow") is not None and entry["dataflow"].get(
                "key"
            ):
                record.dataflow_diags = [
                    Diagnostic.from_json(d) for d in entry["dataflow"]["diags"]
                ]
                record.dataflow_used = {
                    (line, rule)
                    for line, rule in entry["dataflow"].get("used_suppr", [])
                }
                record.dataflow_key = entry["dataflow"]["key"]
            if entry.get("ranges") is not None and entry["ranges"].get("key"):
                record.ranges_diags = [
                    Diagnostic.from_json(d) for d in entry["ranges"]["diags"]
                ]
                record.ranges_used = {
                    (line, rule)
                    for line, rule in entry["ranges"].get("used_suppr", [])
                }
                record.ranges_key = entry["ranges"]["key"]
            self.stats["cached"] += 1
            self.records[key] = record
            return
        try:
            context = ModuleContext(key, path.read_text())
        except SyntaxError as error:
            summary = ModuleSummary(
                module=key,
                path=key,
                is_consumer=is_consumer,
                exports=[],
                definitions=[],
                imports=[],
                references=[],
                suppressions={},
                specs={},
                spec_errors=[],
                ops=[],
            )
            record = ModuleRecord(summary, None, digest, analyzed=True)
            record.syntax_error = Diagnostic(
                "syntax-error",
                key,
                error.lineno or 1,
                (error.offset or 1) - 1,
                f"could not parse: {error.msg}",
            )
            self.stats["analyzed"] += 1
            self.records[key] = record
            return
        summary = build_summary(context, is_consumer)
        self.stats["analyzed"] += 1
        self.records[key] = ModuleRecord(summary, context, digest, analyzed=True)

    # ------------------------------------------------------------------
    # Lookups used by the whole-program passes
    # ------------------------------------------------------------------
    def summaries(self, include_consumers: bool = True):
        """Iterate module summaries (optionally skipping consumers)."""
        for record in self.records.values():
            if include_consumers or not record.summary.is_consumer:
                yield record.summary

    def module(self, name: str) -> Optional[ModuleSummary]:
        """Summary of the module with dotted name ``name``, if loaded."""
        return self.by_module.get(name)

    def resolve_function(self, module: str, dotted: str):
        """Resolve ``dotted`` (as written in ``module``) to a FunctionSpec.

        Returns ``(defining_module, qualname, spec)`` or None.  Handles
        same-module calls, from-imported names, and aliased module access
        (``F.softmax``); package re-exports are chased one level through
        the package ``__init__`` imports.
        """
        summary = self.by_module.get(module)
        if summary is None:
            return None
        if dotted in summary.specs:
            return module, dotted, summary.specs[dotted]
        head, _, tail = dotted.partition(".")
        for record in summary.imports:
            if record.alias == head:
                target = record.target()
                full = target + ("." + tail if tail else "")
                return self._lookup_function(full)
            if record.alias == dotted and record.name:
                return self._lookup_function(record.target())
        if "." in dotted:
            return self._lookup_function(dotted)
        return None

    def _lookup_function(self, dotted: str):
        module_name, _, func = dotted.rpartition(".")
        summary = self.by_module.get(module_name)
        if summary is not None and func in summary.specs:
            return module_name, func, summary.specs[func]
        # Chase one level of package re-export: repro.nn.functional.softmax
        # written as repro.nn.softmax via the package __init__.
        if summary is not None:
            for record in summary.imports:
                if record.alias == func and record.name:
                    return self._lookup_function(record.target())
        return None

    def resolve_bits_function(self, module: str, dotted: str):
        """Resolve ``dotted`` (as written in ``module``) to a BitsFunctionSpec.

        Same resolution strategy as :meth:`resolve_function`, over the
        ``Bits:`` spec tables instead of the ``Shapes:`` ones.
        """
        summary = self.by_module.get(module)
        if summary is None:
            return None
        if dotted in summary.bit_specs:
            return module, dotted, summary.bit_specs[dotted]
        head, _, tail = dotted.partition(".")
        for record in summary.imports:
            if record.alias == head:
                target = record.target()
                full = target + ("." + tail if tail else "")
                return self._lookup_bits_function(full)
            if record.alias == dotted and record.name:
                return self._lookup_bits_function(record.target())
        if "." in dotted:
            return self._lookup_bits_function(dotted)
        return None

    def _lookup_bits_function(self, dotted: str):
        module_name, _, func = dotted.rpartition(".")
        summary = self.by_module.get(module_name)
        if summary is not None and func in summary.bit_specs:
            return module_name, func, summary.bit_specs[func]
        if summary is not None:
            for record in summary.imports:
                if record.alias == func and record.name:
                    return self._lookup_bits_function(record.target())
        return None

    def effect_summaries(self) -> dict:
        """Memoized interprocedural effect verdicts (see :mod:`effects`)."""
        if self._effects is None:
            self._effects = infer_effects(self)
        return self._effects

    def usage_index(self) -> dict:
        """Map of dotted object name -> list of consuming module names."""
        if self._uses_index is None:
            index: dict = {}
            for summary in self.summaries():
                for use in summary.resolved_uses():
                    index.setdefault(use, []).append(summary.module)
            self._uses_index = index
        return self._uses_index

    def spec_fingerprint(self) -> str:
        """Stable digest of every ``Shapes:``/``Bits:`` spec in the project.

        Cached dataflow and range results are only valid while this is
        unchanged — a spec edit anywhere can change the verdict at any
        call site.
        """
        import hashlib
        import json

        payload = {
            summary.module: {
                "shapes": {
                    k: v.to_json() for k, v in sorted(summary.specs.items())
                },
                "bits": {
                    k: v.to_json()
                    for k, v in sorted(summary.bit_specs.items())
                },
            }
            for summary in self.summaries()
            if summary.specs or summary.bit_specs
        }
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def _module_pass(self, key: str, spec_fp: str) -> tuple:
        """Compute whatever per-module results ``key`` is missing.

        Returns ``(key, module_part, flow_part, ranges_part)`` where each
        part is a ``(diagnostics, sorted_used_suppressions)`` pair or None
        when the cached result is still valid.  Deliberately read-only on
        ``self`` (results are merged by the caller) so that ``--jobs`` can
        run it inside forked workers without breaking the fork-safety
        contract this very analyzer enforces.
        """
        from repro.analysis.dataflow import analyze_module_dataflow
        from repro.analysis.ranges import analyze_module_ranges

        record = self.records[key]
        summary = record.summary
        module_part = None
        if record.module_diags is None:
            context = record.ensure_context()
            found: list = []
            for checker in all_rules():
                for diagnostic in checker.check(context):
                    if not context.is_suppressed(
                        diagnostic.rule_id, diagnostic.line
                    ):
                        found.append(diagnostic)
            module_part = (found, sorted(context.used_suppressions()))
        flow_part = None
        if summary.specs and (
            record.dataflow_diags is None or record.dataflow_key != spec_fp
        ):
            context = record.ensure_context()
            flow_diags, flow_used = analyze_module_dataflow(
                self, summary, context
            )
            flow_part = (flow_diags, sorted(flow_used))
        ranges_part = None
        if summary.bit_specs and (
            record.ranges_diags is None or record.ranges_key != spec_fp
        ):
            context = record.ensure_context()
            range_diags, range_used = analyze_module_ranges(
                self, summary, context
            )
            ranges_part = (range_diags, sorted(range_used))
        return key, module_part, flow_part, ranges_part

    def analyze(
        self, select: Optional[Iterable[str]] = None, jobs: int = 0
    ) -> list:
        """Run per-module rules, dataflow, and whole-program passes.

        Returns the surviving diagnostics sorted by location.  ``select``
        filters the report to the given rule ids (all passes still run so
        that suppression accounting stays correct).  ``jobs > 0`` fans the
        per-module passes out over that many forked workers via
        :func:`repro.runtime.parallel.run_parallel_map` — bit-identical to
        the serial run because workers only *compute* results and the
        parent merges them in file order; fewer than
        :data:`ANALYSIS_JOBS_MIN_FILES` pending files auto-serialize.
        """
        diagnostics: list = []
        spec_fp = self.spec_fingerprint()
        used: dict[str, set] = {}

        pending = [
            key
            for key, record in self.records.items()
            if record.syntax_error is None
            and not record.summary.is_consumer
            and (
                record.module_diags is None
                or (
                    record.summary.specs
                    and (
                        record.dataflow_diags is None
                        or record.dataflow_key != spec_fp
                    )
                )
                or (
                    record.summary.bit_specs
                    and (
                        record.ranges_diags is None
                        or record.ranges_key != spec_fp
                    )
                )
            )
        ]
        parallel = jobs > 0 and len(pending) >= ANALYSIS_JOBS_MIN_FILES
        if jobs > 0:
            self.stats["jobs_mode"] = "parallel" if parallel else "auto-serial"
        if parallel:
            from repro.runtime.parallel import run_parallel_map

            def analyze_one(key):
                return self._module_pass(key, spec_fp)

            outcomes = run_parallel_map(analyze_one, pending, workers=jobs)
        else:
            outcomes = [self._module_pass(key, spec_fp) for key in pending]
        for key, module_part, flow_part, ranges_part in outcomes:
            record = self.records[key]
            if module_part is not None:
                record.module_diags = module_part[0]
                record.used_suppressions = {
                    tuple(item) for item in module_part[1]
                }
            if flow_part is not None:
                record.dataflow_diags = flow_part[0]
                record.dataflow_used = {tuple(item) for item in flow_part[1]}
                record.dataflow_key = spec_fp
            if ranges_part is not None:
                record.ranges_diags = ranges_part[0]
                record.ranges_used = {tuple(item) for item in ranges_part[1]}
                record.ranges_key = spec_fp

        for key, record in self.records.items():
            summary = record.summary
            if record.syntax_error is not None:
                diagnostics.append(record.syntax_error)
                continue
            if summary.is_consumer:
                continue
            diagnostics.extend(record.module_diags)
            used.setdefault(key, set()).update(record.used_suppressions or set())
            if summary.specs:
                diagnostics.extend(record.dataflow_diags)
                used.setdefault(key, set()).update(record.dataflow_used or set())
            if summary.bit_specs:
                diagnostics.extend(record.ranges_diags or [])
                used.setdefault(key, set()).update(record.ranges_used or set())

        # Whole-program passes always run; they are summary-driven and cheap.
        for checker in all_wp_rules():
            for diagnostic in checker.check(self):
                owner = self.records.get(diagnostic.path)
                pragmas = owner.summary.suppressions if owner else {}
                if diagnostic.rule_id in pragmas.get(diagnostic.line, []):
                    used.setdefault(diagnostic.path, set()).add(
                        (diagnostic.line, diagnostic.rule_id)
                    )
                    continue
                diagnostics.append(diagnostic)

        if select is None:
            ran = {r.id for r in all_rules()} | {r.id for r in all_wp_rules()}
            diagnostics.extend(self._unused_suppressions(used, ran))
        else:
            wanted = set(select)
            diagnostics = [d for d in diagnostics if d.rule_id in wanted]
            # A pragma is only "unused" when its rule is in the selection:
            # pragmas for rules excluded by the glob are left alone.
            diagnostics.extend(self._unused_suppressions(used, wanted))

        self._write_cache(spec_fp)
        diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule_id))
        return diagnostics

    def _unused_suppressions(self, used: dict, ran: set) -> list:
        warnings: list = []
        for key, record in self.records.items():
            summary = record.summary
            if summary.is_consumer or record.syntax_error is not None:
                continue
            module_used = used.get(key, set())
            context = ModuleContext.__new__(ModuleContext)
            context.path = summary.path
            context._suppressions = {
                line: set(names) for line, names in summary.suppressions.items()
            }
            context._used_suppressions = set(module_used)
            warnings.extend(unused_suppression_diagnostics(context, ran))
        return warnings

    def _write_cache(self, spec_fp: str) -> None:
        if self._cache is None:
            return
        for key, record in self.records.items():
            if record.syntax_error is not None:
                continue
            entry = {
                "summary": record.summary.to_json(),
                "module_diags": (
                    [d.to_json() for d in record.module_diags]
                    if record.module_diags is not None
                    else None
                ),
                "used_suppr": sorted(record.used_suppressions or set()),
                "dataflow": (
                    {
                        "key": spec_fp,
                        "diags": [d.to_json() for d in record.dataflow_diags],
                        "used_suppr": sorted(record.dataflow_used or set()),
                    }
                    if record.dataflow_diags is not None
                    else None
                ),
                "ranges": (
                    {
                        "key": spec_fp,
                        "diags": [d.to_json() for d in record.ranges_diags],
                        "used_suppr": sorted(record.ranges_used or set()),
                    }
                    if record.ranges_diags is not None
                    else None
                ),
            }
            self._cache.store(key, record.digest, entry)
        self._cache.save()
