"""Small AST helpers shared by the built-in rules.

All helpers treat both ``np`` and ``numpy`` as the numpy module name, since
the repo imports ``numpy as np`` everywhere but fixtures may not.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = [
    "dotted_name",
    "is_numpy_call",
    "numpy_call_name",
    "call_name",
    "walk_calls",
    "iter_scopes",
    "contains",
    "has_positive_constant_term",
    "is_public_name",
]

_NUMPY_ALIASES = {"np", "numpy"}


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (``np.exp`` for ``np.exp(x)``)."""
    return dotted_name(node.func)


def numpy_call_name(node: ast.Call) -> Optional[str]:
    """The numpy function being called, or ``None`` for non-numpy calls.

    Returns the name without the module prefix: ``np.linalg.norm(x)`` maps
    to ``linalg.norm``.
    """
    name = call_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    if head in _NUMPY_ALIASES and rest:
        return rest
    return None


def is_numpy_call(node: ast.AST, names: set[str]) -> bool:
    """Whether ``node`` is a call to one of the given numpy functions."""
    return isinstance(node, ast.Call) and numpy_call_name(node) in names


def walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Yield every ``Call`` node in ``node``'s subtree (including itself)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module node and every (possibly nested) function/class body.

    Rules that need "the enclosing scope of this expression" walk scopes and
    then search each scope's direct statements.
    """
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield node


def contains(node: ast.AST, predicate) -> bool:
    """Whether any node in the subtree satisfies ``predicate``."""
    return any(predicate(child) for child in ast.walk(node))


def has_positive_constant_term(node: ast.AST) -> bool:
    """Whether the expression adds a positive numeric constant or an ``eps``.

    Used as "this quantity is bounded away from zero" evidence: matches
    ``x + 1e-8``, ``1.0 + z``, ``x + eps`` and ``x + self.eps`` shapes.
    """

    def _is_eps_term(term: ast.AST) -> bool:
        if isinstance(term, ast.Constant) and isinstance(term.value, (int, float)):
            return term.value > 0
        name = dotted_name(term)
        return name is not None and "eps" in name.split(".")[-1].lower()

    for child in ast.walk(node):
        if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Add):
            if _is_eps_term(child.left) or _is_eps_term(child.right):
                return True
    return False


def is_public_name(name: str) -> bool:
    """Public by convention: no leading underscore (dunders are not public)."""
    return not name.startswith("_")
