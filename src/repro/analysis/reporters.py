"""Render diagnostics as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import Diagnostic

__all__ = ["render_text", "render_json"]


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """GCC-style ``path:line:col: rule: message`` lines plus a summary."""
    lines = [d.format() for d in diagnostics]
    count = len(diagnostics)
    if count == 0:
        lines.append("repro-lint: no violations")
    else:
        noun = "violation" if count == 1 else "violations"
        lines.append(f"repro-lint: {count} {noun}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """A JSON object with a count and one record per diagnostic."""
    payload = {
        "violations": len(diagnostics),
        "diagnostics": [d.to_json() for d in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
