"""Render diagnostics as text, JSON, or SARIF.

The SARIF output targets the 2.1.0 schema consumed by code-scanning UIs
(GitHub, VS Code SARIF viewer): one run, one ``repro-lint`` driver, one
result per diagnostic, with warning/error levels mirroring diagnostic
severity.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import Diagnostic

__all__ = ["render_text", "render_json", "render_sarif", "severity_counts"]

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def severity_counts(diagnostics: Sequence[Diagnostic]) -> tuple[int, int]:
    """``(errors, warnings)`` over a diagnostic list."""
    errors = sum(1 for d in diagnostics if d.severity == "error")
    return errors, len(diagnostics) - errors


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """GCC-style ``path:line:col: rule: message`` lines plus a summary."""
    lines = [d.format() for d in diagnostics]
    errors, warnings = severity_counts(diagnostics)
    if not diagnostics:
        lines.append("repro-lint: no violations")
    else:
        noun = "violation" if errors == 1 else "violations"
        summary = f"repro-lint: {errors} {noun}"
        if warnings:
            noun = "warning" if warnings == 1 else "warnings"
            summary += f", {warnings} {noun}"
        lines.append(summary)
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """A JSON object with counts and one record per diagnostic."""
    errors, warnings = severity_counts(diagnostics)
    payload = {
        "violations": errors,
        "warnings": warnings,
        "diagnostics": [d.to_json() for d in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """A SARIF 2.1.0 log with one result per diagnostic."""
    from repro.analysis.core import all_rule_ids, get_rule

    known = all_rule_ids()
    seen_ids = sorted({d.rule_id for d in diagnostics})
    rules = []
    for rule_id in seen_ids:
        descriptor: dict = {"id": rule_id}
        if rule_id in known:
            try:
                summary = get_rule(rule_id).summary
            except KeyError:
                summary = ""  # synthetic ids have no registry entry
            if summary:
                descriptor["shortDescription"] = {"text": summary}
        rules.append(descriptor)
    rule_index = {rule_id: i for i, rule_id in enumerate(seen_ids)}
    results = [
        {
            "ruleId": d.rule_id,
            "ruleIndex": rule_index[d.rule_id],
            "level": d.severity,
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": d.line,
                            # SARIF columns are 1-based; diagnostics are 0-based.
                            "startColumn": d.col + 1,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
