"""Layer sensitivity via average Hessian trace (Algorithm 1, line 12/17).

For attention projections, the trace comes from the attention-aware
Hessians of :mod:`repro.core.hessian`; for feed-forward projections it
comes from the GPTQ input Hessian ``2 X X^T / n`` — exactly the split the
paper describes ("the Hessian matrix form in the GPTQ method" for FFN
layers, the attention-output form for Q/K/V/O).

Traces are normalised per weight dimension (mean of the Hessian diagonal)
so layers of different widths are comparable.

The sensitivity pass runs on the *frozen* full-precision model, so the
attention captures stream through a single forward per calibration batch
(:class:`~repro.core.hessian.CalibrationCaptureStream` with
``frozen=True``) instead of one forward per ``(block, batch)`` pair, and
the per-block Hessian accumulation can fan out over worker processes
(``workers > 0``) — each block's estimator is independent and
deterministic, so parallel results are bit-identical to serial.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.hessian import (
    AttentionHessians,
    CalibrationCaptureStream,
    attention_hessians_from_captures,
)
from repro.core.kron import (
    HESSIAN_MODES,
    KronAttentionHessians,
    kron_attention_hessians_from_captures,
)
from repro.data.calibration import CalibrationSet
from repro.nn.transformer import LlamaModel
from repro.quant.calibration_hooks import collect_input_stats
from repro.runtime.parallel import MIN_PARALLEL_COST, run_parallel_map

__all__ = ["LayerSensitivity", "compute_sensitivities"]

_ATTENTION_PROJECTIONS = ("q_proj", "k_proj", "v_proj", "o_proj")


@dataclasses.dataclass
class LayerSensitivity:
    """Sensitivity record of one quantizable layer."""

    name: str
    mean_trace: float
    n_weights: int
    is_attention: bool


def compute_sensitivities(
    model: LlamaModel,
    calibration: CalibrationSet,
    n_probes: int = 8,
    batch_size: int = 16,
    seed: int = 0,
    attention_cache: dict[int, AttentionHessians | KronAttentionHessians]
    | None = None,
    hessian_mode: str = "probed",
    workers: int = 0,
) -> dict[str, LayerSensitivity]:
    """Average Hessian trace of every quantizable layer.

    ``attention_cache``, if given, is filled with the per-block attention
    Hessians so the quantization pass can reuse them instead of
    recomputing.  ``hessian_mode`` selects the q/k engine (``"probed"`` —
    exact estimator — or ``"kron"``, see :mod:`repro.core.kron`);
    ``workers > 0`` accumulates block Hessians in parallel (bit-identical
    to serial).
    """
    if hessian_mode not in HESSIAN_MODES:
        raise ValueError(
            f"unknown hessian_mode {hessian_mode!r}; expected one of "
            f"{HESSIAN_MODES}"
        )
    layers = model.quantizable_linears()
    sensitivities: dict[str, LayerSensitivity] = {}

    ffn_names = [
        name
        for name in layers
        if not name.split(".")[-1] in _ATTENTION_PROJECTIONS
    ]
    if ffn_names:
        stats = collect_input_stats(
            model, calibration.segments, layer_names=ffn_names,
            batch_size=batch_size,
        )
        for name in ffn_names:
            hessian = stats[name].normalised_hessian()
            sensitivities[name] = LayerSensitivity(
                name=name,
                mean_trace=float(np.trace(hessian) / hessian.shape[0]),
                n_weights=layers[name].weight.size,
                is_attention=False,
            )

    stream = CalibrationCaptureStream(
        model, calibration.segments, batch_size=batch_size, frozen=True
    )

    def block_hessians(block_index: int, captures):
        """One block's Hessians from its streamed captures."""
        attn = model.blocks[block_index].self_attn
        if hessian_mode == "kron":
            return kron_attention_hessians_from_captures(
                attn, captures, n_probes=n_probes, seed=seed + block_index
            )
        return attention_hessians_from_captures(
            attn, captures, n_probes=n_probes, seed=seed + block_index
        )

    n_blocks = len(model.blocks)
    if workers > 0 and n_blocks > 1:
        # Fan out per block: captures are drained first (the stream is
        # inherently serial), then each worker accumulates one block.
        all_captures = [stream.block_captures(i) for i in range(n_blocks)]
        d_model = model.config.d_model
        total_tokens = int(np.atleast_2d(calibration.segments).size)
        cost = float(n_blocks) * total_tokens * n_probes * d_model * d_model
        per_block = run_parallel_map(
            lambda i: block_hessians(i, all_captures[i]),
            range(n_blocks),
            workers=workers,
            cost=cost,
            min_cost=MIN_PARALLEL_COST,
            label="block Hessians",
        )
    else:
        # Serial path streams block by block: captures of block ``i`` are
        # released before block ``i+1``'s are materialised.
        per_block = [
            block_hessians(i, stream.block_captures(i))
            for i in range(n_blocks)
        ]

    for block_index, hessians in enumerate(per_block):
        if attention_cache is not None:
            attention_cache[block_index] = hessians
        for projection in _ATTENTION_PROJECTIONS:
            name = f"blocks.{block_index}.self_attn.{projection}"
            sensitivities[name] = LayerSensitivity(
                name=name,
                mean_trace=hessians.mean_trace(projection),
                n_weights=layers[name].weight.size,
                is_attention=True,
            )
    return sensitivities
