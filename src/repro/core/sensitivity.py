"""Layer sensitivity via average Hessian trace (Algorithm 1, line 12/17).

For attention projections, the trace comes from the attention-aware
Hessians of :mod:`repro.core.hessian`; for feed-forward projections it
comes from the GPTQ input Hessian ``2 X X^T / n`` — exactly the split the
paper describes ("the Hessian matrix form in the GPTQ method" for FFN
layers, the attention-output form for Q/K/V/O).

Traces are normalised per weight dimension (mean of the Hessian diagonal)
so layers of different widths are comparable.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.hessian import AttentionHessians, attention_hessians
from repro.data.calibration import CalibrationSet
from repro.nn.transformer import LlamaModel
from repro.quant.calibration_hooks import collect_input_stats

__all__ = ["LayerSensitivity", "compute_sensitivities"]

_ATTENTION_PROJECTIONS = ("q_proj", "k_proj", "v_proj", "o_proj")


@dataclasses.dataclass
class LayerSensitivity:
    """Sensitivity record of one quantizable layer."""

    name: str
    mean_trace: float
    n_weights: int
    is_attention: bool


def compute_sensitivities(
    model: LlamaModel,
    calibration: CalibrationSet,
    n_probes: int = 8,
    batch_size: int = 16,
    seed: int = 0,
    attention_cache: dict[int, AttentionHessians] | None = None,
) -> dict[str, LayerSensitivity]:
    """Average Hessian trace of every quantizable layer.

    ``attention_cache``, if given, is filled with the per-block attention
    Hessians so the quantization pass can reuse them instead of recomputing.
    """
    layers = model.quantizable_linears()
    sensitivities: dict[str, LayerSensitivity] = {}

    ffn_names = [
        name
        for name in layers
        if not name.split(".")[-1] in _ATTENTION_PROJECTIONS
    ]
    if ffn_names:
        stats = collect_input_stats(
            model, calibration.segments, layer_names=ffn_names,
            batch_size=batch_size,
        )
        for name in ffn_names:
            hessian = stats[name].normalised_hessian()
            sensitivities[name] = LayerSensitivity(
                name=name,
                mean_trace=float(np.trace(hessian) / hessian.shape[0]),
                n_weights=layers[name].weight.size,
                is_attention=False,
            )

    for block_index in range(len(model.blocks)):
        hessians = attention_hessians(
            model,
            block_index,
            calibration.segments,
            n_probes=n_probes,
            batch_size=batch_size,
            seed=seed + block_index,
        )
        if attention_cache is not None:
            attention_cache[block_index] = hessians
        for projection in _ATTENTION_PROJECTIONS:
            name = f"blocks.{block_index}.self_attn.{projection}"
            sensitivities[name] = LayerSensitivity(
                name=name,
                mean_trace=hessians.mean_trace(projection),
                n_weights=layers[name].weight.size,
                is_attention=True,
            )
    return sensitivities
