"""Analytic gradients of the attention output w.r.t. Q/K/V/O weights.

These implement the paper's Eqs. (9), (10), (12), (13): the derivative of
the attention block output ``F = MultiHead(Q, K, V) = Concat(head_h) W^O``
with respect to each projection matrix, propagated *through the softmax and
both matmuls* — the part GPTQ ignores.

Because ``F`` is matrix-valued, derivatives are taken of the scalar
``<F, S>`` for a seed matrix ``S`` (the paper's ``∂F/∂X`` factor).  With
Rademacher seeds, ``E[G_S G_S^T]`` equals the Gauss-Newton/Levenberg-
Marquardt Hessian of Eq. (7) summed over all output coordinates, which is
how :mod:`repro.core.hessian` assembles ``H``.

Our attention applies rotary position embeddings to Q and K; RoPE is a
position-wise linear map, so it enters the chain rule as its adjoint
(``rope_adjoint``), a detail absent from the paper (LLaMA has RoPE; the
paper's formulas elide it) but required for the gradients to be exact —
the test-suite verifies every formula against autograd to ~1e-10.

Shapes: batch ``b``, heads ``h``, sequence ``s``, head dim ``d``,
model dim ``D = h·d``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.nn.attention import AttentionCapture, MultiHeadAttention

__all__ = [
    "AttentionWeights",
    "rope_adjoint",
    "softmax_vjp",
    "attention_seeded_gradients",
    "attention_seeded_gradients_batched",
    "attention_preactivation_gradients_batched",
]


@dataclasses.dataclass
class AttentionWeights:
    """Seeded gradient of the attention output for all four projections.

    Every array matches its weight's ``(d_in, d_out)`` shape: ``(D, D)``.
    """

    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    o: np.ndarray

    def by_name(self) -> dict[str, np.ndarray]:
        """The four gradient arrays keyed by projection layer name."""
        return {
            "q_proj": self.q,
            "k_proj": self.k,
            "v_proj": self.v,
            "o_proj": self.o,
        }


def rope_adjoint(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Adjoint of the rotary map ``R(x) = x·cos + rotate_half(x)·sin``.

    ``rotate_half`` is the linear map ``J`` with ``J^T = -J``, hence
    ``R^T(x) = x·cos - rotate_half(x)·sin``.
    """
    half = x.shape[-1] // 2
    rotated = np.concatenate([-x[..., half:], x[..., :half]], axis=-1)
    return x * cos - rotated * sin


def softmax_vjp(probs: np.ndarray, upstream: np.ndarray) -> np.ndarray:
    """Vector-Jacobian product of row-softmax: ``P ⊙ (U - rowsum(U ⊙ P))``."""
    inner = (upstream * probs).sum(axis=-1, keepdims=True)
    return probs * (upstream - inner)


def _split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """(b, s, D) -> (b, h, s, d)."""
    b, s, d_model = x.shape
    return x.reshape(b, s, n_heads, d_model // n_heads).transpose(0, 2, 1, 3)


def attention_seeded_gradients(
    attn: MultiHeadAttention,
    capture: AttentionCapture,
    seed: np.ndarray,
) -> AttentionWeights:
    """``∂<F, seed>/∂W`` for W ∈ {W^Q, W^K, W^V, W^O} (Eqs. (9)-(13)).

    ``capture`` holds the forward intermediates of the block on some batch
    (see :class:`repro.nn.attention.AttentionCapture`); ``seed`` is the
    ``(b, s, D)`` seed matrix S.
    """
    x = capture.x
    b, s, d_model = x.shape
    n_heads = attn.n_heads
    d_head = attn.d_head
    scale = 1.0 / np.sqrt(d_head)
    cos, sin = attn.rope.tables(s)
    w_o = attn.o_proj.weight.data  # (D, D); rows h*d..(h+1)*d belong to head h

    # --- Eq. (9): ∂F/∂W^O = Concat(heads)^T S -------------------------
    heads_flat = capture.heads.reshape(b * s, d_model)
    seed_flat = seed.reshape(b * s, d_model)
    grad_o = heads_flat.T @ seed_flat

    # Per-head upstream of the context: S (W_h^O)^T, shape (b, h, s, d).
    w_o_heads = w_o.reshape(n_heads, d_head, d_model)  # (h, d, D)
    upstream_context = np.einsum("bsD,hdD->bhsd", seed, w_o_heads)

    # --- Eq. (10): ∂F/∂W^V = X^T P^T (S W^O,T) ------------------------
    # d<F,S>/dV_h = P_h^T upstream_context_h, then back through V = X W^V.
    grad_v_heads = np.einsum(
        "bhts,bhtd->bhsd", capture.probs, upstream_context
    )  # P^T @ upstream, per head: (b, h, s, d)
    grad_v = np.einsum("bsD,bhsd->hDd", x, grad_v_heads)

    # --- softmax back to the pre-softmax scores N ----------------------
    # d<F,S>/dP_h = upstream_context_h V_h^T, shape (b, h, s, s).
    upstream_probs = np.einsum(
        "bhsd,bhtd->bhst", upstream_context, capture.v
    )
    omega = softmax_vjp(capture.probs, upstream_probs)  # (b, h, s, s)

    # --- Eqs. (12)/(13): through N = R(XW^Q) R(XW^K)^T / sqrt(d) -------
    # d<F,S>/dQ_rot = Omega K_rot / sqrt(d);  d<F,S>/dK_rot = Omega^T Q_rot.
    grad_q_rot = scale * np.einsum("bhst,bhtd->bhsd", omega, capture.k)
    grad_k_rot = scale * np.einsum("bhst,bhsd->bhtd", omega, capture.q)
    grad_q_pre = rope_adjoint(grad_q_rot, cos, sin)
    grad_k_pre = rope_adjoint(grad_k_rot, cos, sin)
    grad_q = np.einsum("bsD,bhsd->hDd", x, grad_q_pre)
    grad_k = np.einsum("bsD,bhsd->hDd", x, grad_k_pre)

    def merge(per_head: np.ndarray) -> np.ndarray:
        """(h, D, d) -> (D, h·d), interleaving heads along columns."""
        return per_head.transpose(1, 0, 2).reshape(d_model, d_model)

    return AttentionWeights(
        q=merge(grad_q), k=merge(grad_k), v=merge(grad_v), o=grad_o
    )


def _batched_upstream_context(
    attn: MultiHeadAttention, seeds: np.ndarray
) -> np.ndarray:
    """Per-head upstream of the context for a stack of seeds.

    ``S (W_h^O)^T`` with a leading probe axis: ``(p, b, s, D) -> (p, b, h,
    s, d)``.  The einsum differs from the unbatched one only by the extra
    batch label, which numpy evaluates slice-by-slice — each probe's result
    is bitwise identical to the per-seed call.
    """
    w_o = attn.o_proj.weight.data
    w_o_heads = w_o.reshape(attn.n_heads, attn.d_head, attn.d_model)
    return np.einsum("pbsD,hdD->pbhsd", seeds, w_o_heads)


def attention_preactivation_gradients_batched(
    attn: MultiHeadAttention,
    capture: AttentionCapture,
    seeds: np.ndarray,
    upstream_context: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-RoPE-input q/k gradients for a stack of seeds at once.

    Runs the softmax-adjoint chain of Eqs. (12)/(13) for all ``p`` seeds in
    stacked einsums, stopping *before* the final contraction with the block
    input X.  Returns ``(grad_q_pre, grad_k_pre)``, each ``(p, b, h, s,
    d)`` — exactly the per-seed ``grad_q_pre``/``grad_k_pre`` of
    :func:`attention_seeded_gradients` stacked along a new leading axis.
    The KronQ output-side factors consume these directly (the X contraction
    is what the Kronecker structure factors away).

    Shapes:
        attn: any
        capture: any
        seeds: (p, b, s, D) f64
        upstream_context: (p, b, h, s, d) f64
        return: any
    """
    s = capture.x.shape[1]
    scale = 1.0 / np.sqrt(attn.d_head)
    cos, sin = attn.rope.tables(s)
    if upstream_context is None:
        upstream_context = _batched_upstream_context(attn, seeds)
    upstream_probs = np.einsum(
        "pbhsd,bhtd->pbhst", upstream_context, capture.v
    )
    omega = softmax_vjp(capture.probs, upstream_probs)  # (p, b, h, s, s)
    grad_q_rot = scale * np.einsum("pbhst,bhtd->pbhsd", omega, capture.k)
    grad_k_rot = scale * np.einsum("pbhst,bhsd->pbhtd", omega, capture.q)
    return rope_adjoint(grad_q_rot, cos, sin), rope_adjoint(
        grad_k_rot, cos, sin
    )


def attention_seeded_gradients_batched(
    attn: MultiHeadAttention,
    capture: AttentionCapture,
    seeds: np.ndarray,
) -> AttentionWeights:
    """All four projection gradients for a stack of seeds at once.

    Equivalent to stacking ``attention_seeded_gradients(attn, capture,
    seeds[p])`` over ``p`` — and *bitwise* so: every stacked einsum and
    broadcast matmul here evaluates each probe slice with the same
    operand order and accumulation pattern as the unbatched call (pinned
    by the differential tests).  Returns an :class:`AttentionWeights`
    whose arrays carry a leading probe axis: ``(p, D, D)``.

    Shapes:
        attn: any
        capture: any
        seeds: (p, b, s, D) f64
        return: any
    """
    x = capture.x
    b, s, d_model = x.shape
    n_probes = seeds.shape[0]

    # Eq. (9): one GEMM per probe via a broadcast matmul.
    heads_flat = capture.heads.reshape(b * s, d_model)
    grad_o = heads_flat.T @ seeds.reshape(n_probes, b * s, d_model)

    upstream_context = _batched_upstream_context(attn, seeds)

    # Eq. (10), batched over probes.
    grad_v_heads = np.einsum(
        "bhts,pbhtd->pbhsd", capture.probs, upstream_context
    )
    grad_v = np.einsum("bsD,pbhsd->phDd", x, grad_v_heads)

    # Eqs. (12)/(13) through the softmax, batched over probes.
    grad_q_pre, grad_k_pre = attention_preactivation_gradients_batched(
        attn, capture, seeds, upstream_context=upstream_context
    )
    grad_q = np.einsum("bsD,pbhsd->phDd", x, grad_q_pre)
    grad_k = np.einsum("bsD,pbhsd->phDd", x, grad_k_pre)

    def merge(per_head: np.ndarray) -> np.ndarray:
        """(p, h, D, d) -> (p, D, h·d), interleaving heads along columns."""
        return per_head.transpose(0, 2, 1, 3).reshape(
            n_probes, d_model, d_model
        )

    return AttentionWeights(
        q=merge(grad_q), k=merge(grad_k), v=merge(grad_v), o=grad_o
    )
