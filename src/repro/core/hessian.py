"""Attention-aware Levenberg-Marquardt Hessians (paper Eq. (7)).

For each attention projection, the Hessian used by the solver is the
Gauss-Newton matrix of the block-output reconstruction objective
``||F(W) - F(Ŵ)||²`` (paper Eq. (5)), restricted to the input dimension:

* ``o_proj`` — ``F`` is linear in W^O with input ``C = Concat(heads)``, so
  the Hessian is exact and closed-form: ``H = (2·D/n) C^T C`` (this reduces
  to the GPTQ Hessian of the layer, as Eq. (9) implies).
* ``v_proj`` — per head, ``F`` is linear in W_h^V with effective input
  ``A_h = P_h X`` and output-side factor W_h^O (Eq. (10)); collapsing the
  output side to its mean gain gives the per-head closed form
  ``H_h = (2·g_h/n) A_h^T A_h`` with ``g_h = ||W_h^O||_F² / d``.
* ``q_proj`` / ``k_proj`` — ``F`` is *nonlinear* (softmax) in these, so the
  Gauss-Newton matrix is estimated with Rademacher probes: for seeds S with
  iid ±1 entries, ``E[G_S G_S^T] = Σ_{t,o} J_{t,o} J_{t,o}^T`` where
  ``G_S = ∂<F,S>/∂W`` comes from the analytic Eqs. (12)/(13)
  (:func:`repro.core.attention_grads.attention_seeded_gradients`).

All Hessians are normalised per token so their traces are comparable
across layers — the quantity Algorithm 1 (line 12) ranks.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.attention_grads import (
    attention_seeded_gradients,
    attention_seeded_gradients_batched,
)
from repro.nn.attention import AttentionCapture, MultiHeadAttention
from repro.nn.transformer import LlamaModel

__all__ = [
    "AttentionHessians",
    "AttentionHessianAccumulator",
    "CalibrationCaptureStream",
    "SharedGramCache",
    "PROBE_MODES",
    "capture_attention",
    "attention_hessians",
    "attention_hessians_from_captures",
    "exact_gauss_newton",
    "head_column_slices",
]

#: Probe-loop strategies for the q/k Gauss-Newton estimator.  ``batched``
#: draws every Rademacher seed at once and folds the probe and head loops
#: into stacked einsums; ``reference`` is the original per-probe Python
#: loop.  Both consume the *same* rng element stream (a single
#: ``(p, b, s, D)`` draw fills row-major, so probe ``p``'s slice equals the
#: ``p``-th sequential draw) and accumulate per-probe terms in the same
#: order, so they are bitwise interchangeable — pinned by the differential
#: tests.
PROBE_MODES = ("batched", "reference")


class SharedGramCache:
    """Deduplicates input Gram matrices across layers sharing one input.

    The calibration Gram ``X^T X`` is the dominant cost of input-statistics
    collection, and several projections consume the *same* activation
    tensor — Q/K/V read the post-norm block input, gate/up read the MLP
    input — so computing the Gram per layer repeats identical GEMMs.  This
    cache keys on the identity of the activation array feeding a layer and
    computes each distinct Gram once per calibration batch (call
    :meth:`reset` at batch boundaries).

    Reuse is bit-identical to recomputation: a hit returns the very array
    an independent ``flat.T @ flat`` on the same input would produce.  The
    cache holds a reference to each keyed array so an ``id()`` can never be
    recycled while its entry is alive.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._entries: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def gram(self, source: np.ndarray, flat: np.ndarray) -> np.ndarray:
        """``flat.T @ flat``, memoized by the identity of ``source``.

        ``source`` is the original activation array a hook observed;
        ``flat`` is its 2-D ``(n_tokens, d_in)`` reshape (a view, so its
        own ``id`` is not stable across hooks).
        """
        key = id(source)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is source:
            self.hits += 1
            return entry[1]
        self.misses += 1
        value = flat.T @ flat
        value.setflags(write=False)
        self._entries[key] = (source, value)
        return value

    def reset(self) -> None:
        """Drop all entries (call between calibration batches)."""
        self._entries.clear()


@dataclasses.dataclass
class AttentionHessians:
    """Per-projection Hessians for one attention block.

    ``q``, ``k``, ``v`` hold one ``(D, D)`` matrix per head (each head's
    column slice of the weight is quantized against its own Hessian);
    ``o`` is a single ``(D, D)`` matrix.
    """

    q: list[np.ndarray]
    k: list[np.ndarray]
    v: list[np.ndarray]
    o: np.ndarray
    _full_cache: dict[str, np.ndarray] = dataclasses.field(
        default_factory=dict, repr=False, compare=False
    )

    def _per_head(self, projection: str) -> list[np.ndarray]:
        return {"q_proj": self.q, "k_proj": self.k, "v_proj": self.v}[
            projection
        ]

    def full_matrix(self, projection: str) -> np.ndarray:
        """Head-averaged Hessian, memoized per projection.

        The sensitivity sweep asks for the same projection's matrix under
        several bit-widths; the head mean is computed once and cached.
        """
        if projection == "o_proj":
            return self.o
        cached = self._full_cache.get(projection)
        if cached is None:
            cached = np.mean(self._per_head(projection), axis=0)
            self._full_cache[projection] = cached
        return cached

    def mean_trace(self, projection: str) -> float:
        """Average Hessian trace (trace / dimension) of a projection.

        Reduces the per-head *diagonals* directly — no ``(D, D)``
        head-averaged temporary.  The element-wise head mean and the
        diagonal sum run in the same order as
        ``np.trace(full_matrix(projection))``, so the value is bitwise
        unchanged.
        """
        if projection == "o_proj":
            return float(np.trace(self.o) / self.o.shape[0])
        diagonals = [np.diagonal(m) for m in self._per_head(projection)]
        diag_mean = np.mean(diagonals, axis=0)
        return float(diag_mean.sum() / diag_mean.shape[0])


def capture_attention(
    model: LlamaModel, ids: np.ndarray, block_index: int
) -> AttentionCapture:
    """Forward ``ids`` and capture block ``block_index``'s intermediates."""
    if not 0 <= block_index < len(model.blocks):
        raise IndexError(f"block index {block_index} out of range")
    ids = np.atleast_2d(np.asarray(ids))
    x = model.embed.weight.data[ids]
    for index, block in enumerate(model.blocks):
        if index == block_index:
            _, capture = block.forward_array(x, capture=True)
            return capture
        x = block.forward_array(x)
    raise AssertionError("unreachable")


class AttentionHessianAccumulator:
    """Streaming accumulator for one block's four projection Hessians.

    Feed one :class:`AttentionCapture` per calibration batch via
    :meth:`add`, then :meth:`finalize` applies the per-token
    normalisation.  Both probe modes (see :data:`PROBE_MODES`) produce
    bitwise-identical sums: the batched path draws all probes in one rng
    call (same element stream as sequential draws), computes every probe's
    seeded gradient through stacked einsums whose per-probe slices match
    the unbatched chain exactly, and adds the per-probe outer products in
    the original probe-ascending order per head (the per-head sequences
    are independent, so hoisting the head loop is order-preserving).
    """

    def __init__(
        self,
        attn: MultiHeadAttention,
        n_probes: int = 8,
        seed: int = 0,
        probe_mode: str = "batched",
    ) -> None:
        if n_probes <= 0:
            raise ValueError("n_probes must be positive")
        if probe_mode not in PROBE_MODES:
            raise ValueError(
                f"unknown probe_mode {probe_mode!r}; expected one of "
                f"{PROBE_MODES}"
            )
        self.attn = attn
        self.n_probes = n_probes
        self.probe_mode = probe_mode
        self.rng = np.random.default_rng(seed)
        d_model = attn.d_model
        n_heads = attn.n_heads
        d_head = attn.d_head
        self.h_q = [np.zeros((d_model, d_model)) for _ in range(n_heads)]
        self.h_k = [np.zeros((d_model, d_model)) for _ in range(n_heads)]
        self.h_v = [np.zeros((d_model, d_model)) for _ in range(n_heads)]
        self.h_o = np.zeros((d_model, d_model))
        self.n_tokens = 0
        w_o = attn.o_proj.weight.data
        self.head_gain = np.array(
            [
                (w_o[h * d_head : (h + 1) * d_head] ** 2).sum() / d_head
                for h in range(n_heads)
            ]
        )

    def add(self, capture: AttentionCapture) -> None:
        """Accumulate one calibration batch's contribution."""
        attn = self.attn
        d_model = attn.d_model
        n_heads = attn.n_heads
        d_head = attn.d_head
        b, s, _ = capture.x.shape
        self.n_tokens += b * s

        # Closed forms: o_proj (exact) and v_proj (per head).
        heads_flat = capture.heads.reshape(b * s, d_model)
        self.h_o += d_model * (heads_flat.T @ heads_flat)
        # A_h = P_h X: effective per-head input of W_h^V.
        a = np.einsum("bhst,btD->bhsD", capture.probs, capture.x)
        for h in range(n_heads):
            a_flat = a[:, h].reshape(b * s, d_model)
            # Accumulation is per-block-local: parallel fan-out is per
            # block, so one worker owns this accumulator end to end.
            self.h_v[h] += self.head_gain[h] * (a_flat.T @ a_flat)  # lint: disable=wp-order-dependent-reduction

        # Probed Gauss-Newton for q/k (softmax nonlinearity).
        if self.probe_mode == "batched":
            probes = self.rng.choice(
                [-1.0, 1.0], size=(self.n_probes, b, s, d_model)
            )
            grads = attention_seeded_gradients_batched(attn, capture, probes)
            for h in range(n_heads):
                cols = slice(h * d_head, (h + 1) * d_head)
                gq = grads.q[:, :, cols]  # (p, D, d)
                gk = grads.k[:, :, cols]
                outer_q = (
                    np.matmul(gq, gq.transpose(0, 2, 1)) / self.n_probes
                )
                outer_k = (
                    np.matmul(gk, gk.transpose(0, 2, 1)) / self.n_probes
                )
                for p in range(self.n_probes):
                    self.h_q[h] += outer_q[p]  # lint: disable=wp-order-dependent-reduction
                    self.h_k[h] += outer_k[p]  # lint: disable=wp-order-dependent-reduction
        else:
            for _ in range(self.n_probes):
                probe = self.rng.choice([-1.0, 1.0], size=(b, s, d_model))
                grads = attention_seeded_gradients(attn, capture, probe)
                for h in range(n_heads):
                    cols = slice(h * d_head, (h + 1) * d_head)
                    gq = grads.q[:, cols]
                    gk = grads.k[:, cols]
                    self.h_q[h] += gq @ gq.T / self.n_probes  # lint: disable=wp-order-dependent-reduction
                    self.h_k[h] += gk @ gk.T / self.n_probes  # lint: disable=wp-order-dependent-reduction

    def finalize(self) -> AttentionHessians:
        """Per-token-normalised Hessians for everything accumulated."""
        if self.n_tokens == 0:
            raise ValueError("no calibration tokens")
        norm = 2.0 / self.n_tokens
        return AttentionHessians(
            q=[norm * m for m in self.h_q],
            k=[norm * m for m in self.h_k],
            v=[norm * m for m in self.h_v],
            o=norm * self.h_o,
        )


def attention_hessians_from_captures(
    attn: MultiHeadAttention,
    captures: Sequence[AttentionCapture],
    n_probes: int = 8,
    seed: int = 0,
    probe_mode: str = "batched",
) -> AttentionHessians:
    """Accumulate one block's Hessians from pre-computed captures.

    The capture-producing forward (see :class:`CalibrationCaptureStream`)
    is decoupled from the estimator so the calibration loop forwards each
    batch once per block instead of once per ``(block, batch)`` pair.
    """
    accumulator = AttentionHessianAccumulator(
        attn, n_probes=n_probes, seed=seed, probe_mode=probe_mode
    )
    for capture in captures:
        accumulator.add(capture)
    return accumulator.finalize()


def attention_hessians(
    model: LlamaModel,
    block_index: int,
    segments: np.ndarray,
    n_probes: int = 8,
    batch_size: int = 16,
    seed: int = 0,
    probe_mode: str = "batched",
) -> AttentionHessians:
    """Accumulate the four projection Hessians over calibration segments.

    Reference entry point: re-forwards the model per batch via
    :func:`capture_attention`.  The production pipeline streams captures
    instead (:class:`CalibrationCaptureStream`), which is bitwise
    identical per block; this form remains the ground truth the stream is
    certified against.
    """
    accumulator = AttentionHessianAccumulator(
        model.blocks[block_index].self_attn,
        n_probes=n_probes,
        seed=seed,
        probe_mode=probe_mode,
    )
    segments = np.atleast_2d(np.asarray(segments))
    for start in range(0, segments.shape[0], batch_size):
        batch = segments[start : start + batch_size]
        accumulator.add(capture_attention(model, batch, block_index))
    return accumulator.finalize()


class CalibrationCaptureStream:
    """Single-pass capture of every block's intermediates per batch.

    ``capture_attention(model, batch, i)`` restarts at the embedding for
    every ``(block, batch)`` pair — O(L²) block forwards per batch over a
    full calibration run.  The stream instead caches each batch's running
    hidden state and advances it one block at a time, so the whole run
    costs O(L) block forwards per batch.

    Two regimes:

    * ``frozen=True`` — the model's weights will not change between
      requests (the sensitivity pass).  The capturing forward's output is
      reused directly as the next block's input.
    * ``frozen=False`` (default) — the sequential APTQ loop *quantizes*
      block ``i`` after capturing it and before requesting block ``i+1``.
      The stream therefore defers advancing past block ``i`` until block
      ``i+1`` is requested, at which point it re-runs only block ``i``'s
      forward with the then-current (quantized) weights.  Because APTQ
      finishes each block before moving on and never revisits one, every
      cached hidden state is computed with exactly the weights the legacy
      per-block re-forward would have seen — bitwise identical captures.

    Requests must be strictly increasing in ``block_index``; skipped
    blocks are forwarded without capture (resume support).
    """

    def __init__(
        self,
        model: LlamaModel,
        segments: np.ndarray,
        batch_size: int = 16,
        frozen: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        segments = np.atleast_2d(np.asarray(segments))
        if segments.shape[0] == 0:
            raise ValueError("no calibration segments")
        self.model = model
        self.frozen = frozen
        self._batches = [
            segments[start : start + batch_size]
            for start in range(0, segments.shape[0], batch_size)
        ]
        self._inputs: list[np.ndarray] | None = None
        # Index of the first block whose forward has NOT yet been applied
        # to the cached hidden states.
        self._front = 0
        # Smallest block index the next request may ask for.
        self._min_request = 0

    @property
    def n_batches(self) -> int:
        """Number of calibration batches the stream iterates per block."""
        return len(self._batches)

    def block_captures(self, block_index: int) -> list[AttentionCapture]:
        """Per-batch captures of ``block_index``, advancing the stream."""
        if not 0 <= block_index < len(self.model.blocks):
            raise IndexError(f"block index {block_index} out of range")
        if block_index < self._min_request:
            raise ValueError(
                f"capture stream is forward-only: block {block_index} "
                f"requested after block {self._min_request - 1}"
            )
        if self._inputs is None:
            self._inputs = [
                self.model.embed.weight.data[np.atleast_2d(np.asarray(batch))]
                for batch in self._batches
            ]
        # Re-run the deferred (possibly re-quantized) prefix up to the
        # requested block with the weights as they stand *now*.
        while self._front < block_index:
            block = self.model.blocks[self._front]
            self._inputs = [block.forward_array(x) for x in self._inputs]
            self._front += 1
        block = self.model.blocks[block_index]
        captures: list[AttentionCapture] = []
        outputs: list[np.ndarray] = []
        for x in self._inputs:
            out, capture = block.forward_array(x, capture=True)
            captures.append(capture)
            outputs.append(out)
        if self.frozen:
            # Immutable model: the capturing forward's output is the next
            # block's input verbatim.
            self._inputs = outputs
            self._front = block_index + 1
        self._min_request = block_index + 1
        return captures


def exact_gauss_newton(
    attn: MultiHeadAttention,
    capture,
    projection: str,
    head: int,
) -> np.ndarray:
    """Exact input-dim Gauss-Newton matrix by basis-seed enumeration.

    Sums ``J_{t,o} J_{t,o}^T`` over *every* output coordinate ``(t, o)`` by
    seeding the analytic gradients with each standard basis matrix.  Cost is
    ``O(batch·seq·D)`` backward passes — viable only on micro models; used
    by the test-suite to certify that the Rademacher probe estimator in
    :func:`attention_hessians` is unbiased.

    Shapes:
        capture: any
        projection: scalar
        head: scalar
        return: (D, D) f64
    """
    if projection not in ("q_proj", "k_proj"):
        raise ValueError("exact enumeration provided for q/k projections")
    from repro.core.attention_grads import attention_seeded_gradients

    b, s, d_model = capture.x.shape
    d_head = attn.d_head
    cols = slice(head * d_head, (head + 1) * d_head)
    total = np.zeros((d_model, d_model))
    for batch_index in range(b):
        for t in range(s):
            for o in range(d_model):
                seed = np.zeros((b, s, d_model))
                seed[batch_index, t, o] = 1.0
                grads = attention_seeded_gradients(attn, capture, seed)
                g = (grads.q if projection == "q_proj" else grads.k)[:, cols]
                total += g @ g.T
    return total


def head_column_slices(d_model: int, n_heads: int) -> Sequence[slice]:
    """Column slice of each head inside a ``(D, D)`` projection weight.

    Shapes:
        d_model: D
        n_heads: scalar
        return: any
    """
    d_head = d_model // n_heads
    return [slice(h * d_head, (h + 1) * d_head) for h in range(n_heads)]
