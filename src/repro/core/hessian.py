"""Attention-aware Levenberg-Marquardt Hessians (paper Eq. (7)).

For each attention projection, the Hessian used by the solver is the
Gauss-Newton matrix of the block-output reconstruction objective
``||F(W) - F(Ŵ)||²`` (paper Eq. (5)), restricted to the input dimension:

* ``o_proj`` — ``F`` is linear in W^O with input ``C = Concat(heads)``, so
  the Hessian is exact and closed-form: ``H = (2·D/n) C^T C`` (this reduces
  to the GPTQ Hessian of the layer, as Eq. (9) implies).
* ``v_proj`` — per head, ``F`` is linear in W_h^V with effective input
  ``A_h = P_h X`` and output-side factor W_h^O (Eq. (10)); collapsing the
  output side to its mean gain gives the per-head closed form
  ``H_h = (2·g_h/n) A_h^T A_h`` with ``g_h = ||W_h^O||_F² / d``.
* ``q_proj`` / ``k_proj`` — ``F`` is *nonlinear* (softmax) in these, so the
  Gauss-Newton matrix is estimated with Rademacher probes: for seeds S with
  iid ±1 entries, ``E[G_S G_S^T] = Σ_{t,o} J_{t,o} J_{t,o}^T`` where
  ``G_S = ∂<F,S>/∂W`` comes from the analytic Eqs. (12)/(13)
  (:func:`repro.core.attention_grads.attention_seeded_gradients`).

All Hessians are normalised per token so their traces are comparable
across layers — the quantity Algorithm 1 (line 12) ranks.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.attention_grads import attention_seeded_gradients
from repro.nn.attention import AttentionCapture, MultiHeadAttention
from repro.nn.transformer import LlamaModel

__all__ = [
    "AttentionHessians",
    "SharedGramCache",
    "capture_attention",
    "attention_hessians",
    "exact_gauss_newton",
    "head_column_slices",
]


class SharedGramCache:
    """Deduplicates input Gram matrices across layers sharing one input.

    The calibration Gram ``X^T X`` is the dominant cost of input-statistics
    collection, and several projections consume the *same* activation
    tensor — Q/K/V read the post-norm block input, gate/up read the MLP
    input — so computing the Gram per layer repeats identical GEMMs.  This
    cache keys on the identity of the activation array feeding a layer and
    computes each distinct Gram once per calibration batch (call
    :meth:`reset` at batch boundaries).

    Reuse is bit-identical to recomputation: a hit returns the very array
    an independent ``flat.T @ flat`` on the same input would produce.  The
    cache holds a reference to each keyed array so an ``id()`` can never be
    recycled while its entry is alive.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._entries: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def gram(self, source: np.ndarray, flat: np.ndarray) -> np.ndarray:
        """``flat.T @ flat``, memoized by the identity of ``source``.

        ``source`` is the original activation array a hook observed;
        ``flat`` is its 2-D ``(n_tokens, d_in)`` reshape (a view, so its
        own ``id`` is not stable across hooks).
        """
        key = id(source)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is source:
            self.hits += 1
            return entry[1]
        self.misses += 1
        value = flat.T @ flat
        value.setflags(write=False)
        self._entries[key] = (source, value)
        return value

    def reset(self) -> None:
        """Drop all entries (call between calibration batches)."""
        self._entries.clear()


@dataclasses.dataclass
class AttentionHessians:
    """Per-projection Hessians for one attention block.

    ``q``, ``k``, ``v`` hold one ``(D, D)`` matrix per head (each head's
    column slice of the weight is quantized against its own Hessian);
    ``o`` is a single ``(D, D)`` matrix.
    """

    q: list[np.ndarray]
    k: list[np.ndarray]
    v: list[np.ndarray]
    o: np.ndarray

    def full_matrix(self, projection: str) -> np.ndarray:
        """Head-averaged Hessian for trace/sensitivity computations."""
        if projection == "o_proj":
            return self.o
        per_head = {"q_proj": self.q, "k_proj": self.k, "v_proj": self.v}[
            projection
        ]
        return np.mean(per_head, axis=0)

    def mean_trace(self, projection: str) -> float:
        """Average Hessian trace (trace / dimension) of a projection."""
        matrix = self.full_matrix(projection)
        return float(np.trace(matrix) / matrix.shape[0])


def capture_attention(
    model: LlamaModel, ids: np.ndarray, block_index: int
) -> AttentionCapture:
    """Forward ``ids`` and capture block ``block_index``'s intermediates."""
    if not 0 <= block_index < len(model.blocks):
        raise IndexError(f"block index {block_index} out of range")
    ids = np.atleast_2d(np.asarray(ids))
    x = model.embed.weight.data[ids]
    for index, block in enumerate(model.blocks):
        if index == block_index:
            _, capture = block.forward_array(x, capture=True)
            return capture
        x = block.forward_array(x)
    raise AssertionError("unreachable")


def attention_hessians(
    model: LlamaModel,
    block_index: int,
    segments: np.ndarray,
    n_probes: int = 8,
    batch_size: int = 16,
    seed: int = 0,
) -> AttentionHessians:
    """Accumulate the four projection Hessians over calibration segments."""
    if n_probes <= 0:
        raise ValueError("n_probes must be positive")
    attn = model.blocks[block_index].self_attn
    d_model = attn.d_model
    n_heads = attn.n_heads
    d_head = attn.d_head
    rng = np.random.default_rng(seed)

    h_q = [np.zeros((d_model, d_model)) for _ in range(n_heads)]
    h_k = [np.zeros((d_model, d_model)) for _ in range(n_heads)]
    h_v = [np.zeros((d_model, d_model)) for _ in range(n_heads)]
    h_o = np.zeros((d_model, d_model))
    n_tokens = 0

    w_o = attn.o_proj.weight.data
    head_gain = np.array(
        [
            (w_o[h * d_head : (h + 1) * d_head] ** 2).sum() / d_head
            for h in range(n_heads)
        ]
    )

    segments = np.atleast_2d(np.asarray(segments))
    for start in range(0, segments.shape[0], batch_size):
        batch = segments[start : start + batch_size]
        capture = capture_attention(model, batch, block_index)
        b, s, _ = capture.x.shape
        n_tokens += b * s

        # Closed forms: o_proj (exact) and v_proj (per head).
        heads_flat = capture.heads.reshape(b * s, d_model)
        h_o += d_model * (heads_flat.T @ heads_flat)
        # A_h = P_h X: effective per-head input of W_h^V.
        a = np.einsum("bhst,btD->bhsD", capture.probs, capture.x)
        for h in range(n_heads):
            a_flat = a[:, h].reshape(b * s, d_model)
            h_v[h] += head_gain[h] * (a_flat.T @ a_flat)

        # Probed Gauss-Newton for q/k (softmax nonlinearity).
        for _ in range(n_probes):
            probe = rng.choice([-1.0, 1.0], size=(b, s, d_model))
            grads = attention_seeded_gradients(attn, capture, probe)
            for h in range(n_heads):
                cols = slice(h * d_head, (h + 1) * d_head)
                gq = grads.q[:, cols]
                gk = grads.k[:, cols]
                h_q[h] += gq @ gq.T / n_probes
                h_k[h] += gk @ gk.T / n_probes

    if n_tokens == 0:
        raise ValueError("no calibration tokens")
    norm = 2.0 / n_tokens
    return AttentionHessians(
        q=[norm * m for m in h_q],
        k=[norm * m for m in h_k],
        v=[norm * m for m in h_v],
        o=norm * h_o,
    )


def exact_gauss_newton(
    attn: MultiHeadAttention,
    capture,
    projection: str,
    head: int,
) -> np.ndarray:
    """Exact input-dim Gauss-Newton matrix by basis-seed enumeration.

    Sums ``J_{t,o} J_{t,o}^T`` over *every* output coordinate ``(t, o)`` by
    seeding the analytic gradients with each standard basis matrix.  Cost is
    ``O(batch·seq·D)`` backward passes — viable only on micro models; used
    by the test-suite to certify that the Rademacher probe estimator in
    :func:`attention_hessians` is unbiased.

    Shapes:
        capture: any
        projection: scalar
        head: scalar
        return: (D, D) f64
    """
    if projection not in ("q_proj", "k_proj"):
        raise ValueError("exact enumeration provided for q/k projections")
    from repro.core.attention_grads import attention_seeded_gradients

    b, s, d_model = capture.x.shape
    d_head = attn.d_head
    cols = slice(head * d_head, (head + 1) * d_head)
    total = np.zeros((d_model, d_model))
    for batch_index in range(b):
        for t in range(s):
            for o in range(d_model):
                seed = np.zeros((b, s, d_model))
                seed[batch_index, t, o] = 1.0
                grads = attention_seeded_gradients(attn, capture, seed)
                g = (grads.q if projection == "q_proj" else grads.k)[:, cols]
                total += g @ g.T
    return total


def head_column_slices(d_model: int, n_heads: int) -> Sequence[slice]:
    """Column slice of each head inside a ``(D, D)`` projection weight.

    Shapes:
        d_model: D
        n_heads: scalar
        return: any
    """
    d_head = d_model // n_heads
    return [slice(h * d_head, (h + 1) * d_head) for h in range(n_heads)]
