"""Hutchinson stochastic trace estimation (the HAWQ-V2 approach).

The related-work comparison point: HAWQ-V2 estimates ``tr(H)`` with the
Hutchinson algorithm because CNNs' Hessians are implicit; APTQ computes the
trace directly from its explicit Levenberg-Marquardt Hessian.  We provide
both so the ablation (bench A2) can show the allocation they induce agrees.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["hutchinson_trace"]


def hutchinson_trace(
    hvp: Callable[[np.ndarray], np.ndarray] | np.ndarray,
    dim: int | None = None,
    n_probes: int = 64,
    seed: int = 0,
) -> float:
    """Estimate ``tr(H)`` as ``E[z^T H z]`` over Rademacher probes ``z``.

    ``hvp`` is either an explicit square matrix or a Hessian-vector-product
    callable (in which case ``dim`` is required).

    The explicit-matrix case draws all probes as one ``(n_probes, dim)``
    matrix — the identical rng element stream as ``n_probes`` sequential
    draws — and evaluates every quadratic form in a single GEMM via
    ``z^T M z = sum(z ⊙ (z M))``, equal to the per-probe loop up to
    floating-point summation order (the parity test bounds the drift at
    machine precision).  The callable case keeps the loop: an hvp is a
    black box over single vectors.
    """
    if n_probes <= 0:
        raise ValueError("n_probes must be positive")
    rng = np.random.default_rng(seed)
    if isinstance(hvp, np.ndarray):
        matrix = hvp
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        dim = matrix.shape[0]
        z = rng.choice([-1.0, 1.0], size=(n_probes, dim))
        return float(np.mean(np.sum(z * (z @ matrix), axis=1)))
    if dim is None:
        raise ValueError("dim is required for a callable hvp")
    total = 0.0
    for _ in range(n_probes):
        z = rng.choice([-1.0, 1.0], size=dim)
        total += float(z @ hvp(z))
    return total / n_probes
