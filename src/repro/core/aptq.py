"""End-to-end APTQ: Algorithm 1 of the paper.

Step 1 — Hessian-attention-based quantization: every attention projection
is quantized with the error-compensated solver driven by the attention-
aware Hessians (Eqs. (7), (9)-(17)); feed-forward projections use the GPTQ
input Hessian.  Q/K/V are quantized head-by-head, each head's column slice
against its own Hessian.

Step 2 — Hessian-trace-based mixed precision: layers are ranked by average
Hessian trace (computed on the full-precision model) and the top fraction
R of weights is kept at 4 bits, the rest dropped to 2 bits (Eq. (18)).

Quantization proceeds block-by-block with calibration inputs recomputed on
the partially quantized model, as in GPTQ.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.allocation import (
    allocate_bits_by_sensitivity,
    average_bits,
)
from repro.core.hessian import (
    AttentionHessians,
    attention_hessians,
    head_column_slices,
)
from repro.core.sensitivity import LayerSensitivity, compute_sensitivities
from repro.data.calibration import CalibrationSet
from repro.nn.transformer import LlamaModel
from repro.quant.calibration_hooks import collect_input_stats
from repro.quant.solver import SolverResult, quantize_with_hessian

__all__ = ["APTQConfig", "APTQResult", "aptq_quantize_model"]

_ATTENTION_PROJECTIONS = ("q_proj", "k_proj", "v_proj", "o_proj")


@dataclasses.dataclass
class APTQConfig:
    """Knobs of an APTQ run (defaults follow the paper's setup)."""

    ratio_4bit: float = 1.0
    high_bits: int = 4
    low_bits: int = 2
    group_size: int | None = 32
    percdamp: float = 0.01
    n_probes: int = 8
    batch_size: int = 16
    seed: int = 0
    # Recompute attention Hessians per block on the partially quantized
    # model (sequential, the faithful protocol); False reuses the
    # full-precision Hessians from the sensitivity pass (faster).
    sequential: bool = True
    # Override the sensitivity-driven allocation with an explicit per-layer
    # bit map (used by the manual block-wise ablation of Table 3).
    allocation_override: dict[str, int] | None = None


@dataclasses.dataclass
class APTQResult:
    """Everything a run produces, for analysis and reporting."""

    allocation: dict[str, int]
    sensitivities: dict[str, LayerSensitivity]
    layer_results: dict[str, SolverResult]
    average_bits: float


def _quantize_attention_layer(
    weight: np.ndarray,
    hessians: list[np.ndarray] | np.ndarray,
    bits: int,
    config: APTQConfig,
) -> tuple[np.ndarray, SolverResult]:
    """Quantize a projection; per-head slices when given per-head Hessians."""
    if isinstance(hessians, np.ndarray):
        result = quantize_with_hessian(
            weight,
            hessians,
            bits=bits,
            group_size=config.group_size,
            percdamp=config.percdamp,
        )
        return result.quantized_weight, result
    d_model = weight.shape[0]
    n_heads = len(hessians)
    quantized = np.empty_like(weight)
    head_results: list[SolverResult] = []
    for head, cols in enumerate(head_column_slices(d_model, n_heads)):
        result = quantize_with_hessian(
            weight[:, cols],
            hessians[head],
            bits=bits,
            group_size=config.group_size,
            percdamp=config.percdamp,
        )
        quantized[:, cols] = result.quantized_weight
        head_results.append(result)
    # Heads share d_in and group boundaries, so the per-head grids
    # concatenate along the output dimension into one layer-wide record.
    from repro.quant.groupwise import GroupQuantResult

    merged_group = GroupQuantResult(
        codes=np.hstack([r.group_result.codes for r in head_results]),
        scales=np.hstack([r.group_result.scales for r in head_results]),
        zeros=np.hstack([r.group_result.zeros for r in head_results]),
        bits=bits,
        group_size=head_results[0].group_result.group_size,
    )
    merged = SolverResult(
        quantized_weight=quantized,
        group_result=merged_group,
        compensated_loss=sum(r.compensated_loss for r in head_results),
        mse=float(np.mean([r.mse for r in head_results])),
    )
    return quantized, merged


def aptq_quantize_model(
    model: LlamaModel,
    calibration: CalibrationSet,
    config: APTQConfig | None = None,
    **overrides,
) -> APTQResult:
    """Quantize ``model`` in place with APTQ; returns the full run record."""
    config = dataclasses.replace(config or APTQConfig(), **overrides)
    layers = model.quantizable_linears()

    # ------------------------------------------------------------------
    # Step 2's sensitivity metric is computed first, on the full-precision
    # model (Algorithm 1 computes traces during the 4-bit pass, before any
    # requantization decisions are applied).
    # ------------------------------------------------------------------
    fp_hessian_cache: dict[int, AttentionHessians] = {}
    sensitivities = compute_sensitivities(
        model,
        calibration,
        n_probes=config.n_probes,
        batch_size=config.batch_size,
        seed=config.seed,
        attention_cache=fp_hessian_cache,
    )
    if config.allocation_override is not None:
        missing = set(layers) - set(config.allocation_override)
        if missing:
            raise KeyError(f"allocation override misses layers {sorted(missing)}")
        allocation = dict(config.allocation_override)
    else:
        allocation = allocate_bits_by_sensitivity(
            sensitivities,
            config.ratio_4bit,
            high_bits=config.high_bits,
            low_bits=config.low_bits,
        )

    # ------------------------------------------------------------------
    # Step 1: sequential Hessian-attention-based quantization.
    # ------------------------------------------------------------------
    layer_results: dict[str, SolverResult] = {}
    for block_index in range(len(model.blocks)):
        prefix = f"blocks.{block_index}."
        attention_names = [
            f"{prefix}self_attn.{proj}" for proj in _ATTENTION_PROJECTIONS
        ]
        mlp_names = [
            name
            for name in layers
            if name.startswith(prefix) and name not in attention_names
        ]

        if config.sequential:
            hessians = attention_hessians(
                model,
                block_index,
                calibration.segments,
                n_probes=config.n_probes,
                batch_size=config.batch_size,
                seed=config.seed + block_index,
            )
        else:
            hessians = fp_hessian_cache[block_index]

        per_projection: dict[str, list[np.ndarray] | np.ndarray] = {
            "q_proj": hessians.q,
            "k_proj": hessians.k,
            "v_proj": hessians.v,
            "o_proj": hessians.o,
        }
        for projection in _ATTENTION_PROJECTIONS:
            name = f"{prefix}self_attn.{projection}"
            linear = layers[name]
            quantized, result = _quantize_attention_layer(
                linear.weight.data,
                per_projection[projection],
                bits=allocation[name],
                config=config,
            )
            # The APTQ core is a quantizer: weight rewrites are its output.
            linear.weight.data = quantized  # lint: disable=autograd-inplace-data
            layer_results[name] = result

        if mlp_names:
            stats = collect_input_stats(
                model,
                calibration.segments,
                layer_names=mlp_names,
                batch_size=config.batch_size,
            )
            for name in mlp_names:
                linear = layers[name]
                result = quantize_with_hessian(
                    linear.weight.data,
                    stats[name].normalised_hessian(),
                    bits=allocation[name],
                    group_size=config.group_size,
                    percdamp=config.percdamp,
                )
                linear.weight.data = result.quantized_weight  # lint: disable=autograd-inplace-data
                layer_results[name] = result

    # Any non-block layer (untied lm_head) quantizes with the GPTQ Hessian.
    remaining = [name for name in layers if name not in layer_results]
    if remaining:
        stats = collect_input_stats(
            model,
            calibration.segments,
            layer_names=remaining,
            batch_size=config.batch_size,
        )
        for name in remaining:
            linear = layers[name]
            result = quantize_with_hessian(
                linear.weight.data,
                stats[name].normalised_hessian(),
                bits=allocation[name],
                group_size=config.group_size,
                percdamp=config.percdamp,
            )
            linear.weight.data = result.quantized_weight  # lint: disable=autograd-inplace-data
            layer_results[name] = result

    counts = {name: layers[name].weight.size for name in layers}
    return APTQResult(
        allocation=allocation,
        sensitivities=sensitivities,
        layer_results=layer_results,
        average_bits=average_bits(allocation, counts),
    )
