"""End-to-end APTQ: Algorithm 1 of the paper, on a fault-tolerant runtime.

Step 1 — Hessian-attention-based quantization: every attention projection
is quantized with the error-compensated solver driven by the attention-
aware Hessians (Eqs. (7), (9)-(17)); feed-forward projections use the GPTQ
input Hessian.  Q/K/V are quantized head-by-head, each head's column slice
against its own Hessian.

Step 2 — Hessian-trace-based mixed precision: layers are ranked by average
Hessian trace (computed on the full-precision model) and the top fraction
R of weights is kept at 4 bits, the rest dropped to 2 bits (Eq. (18)).

Quantization proceeds block-by-block with calibration inputs recomputed on
the partially quantized model, as in GPTQ.

Fault tolerance (see ``docs/ROBUSTNESS.md``): every solver call runs behind
the numerical recovery ladder of :mod:`repro.runtime.recovery`, so a
non-positive-definite Hessian degrades one layer instead of killing the
run; with ``checkpoint_path`` set, an atomic checksum-verified checkpoint
of the partially quantized model and all allocation state lands after
every block, and ``resume=True`` picks the run up at the first incomplete
block.  Every retry, fallback, checkpoint, and resume is recorded in the
:class:`~repro.runtime.journal.RunHealth` report on the result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.allocation import (
    allocate_bits_by_sensitivity,
    average_bits,
)
from repro.core.hessian import (
    AttentionHessians,
    CalibrationCaptureStream,
    attention_hessians_from_captures,
    head_column_slices,
)
from repro.core.kron import (
    HESSIAN_MODES,
    KronAttentionHessians,
    KronFactor,
    kron_attention_hessians_from_captures,
)
from repro.core.sensitivity import LayerSensitivity, compute_sensitivities
from repro.data.calibration import CalibrationSet
from repro.nn.transformer import LlamaModel
from repro.quant.calibration_hooks import collect_input_stats
from repro.quant.formats import QuantFormat, QuantizedTensor, resolve_format
from repro.quant.groupwise import GroupQuantResult
from repro.quant.solver import HessianFactorCache, SolverResult
from repro.runtime import faults
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint
from repro.runtime.errors import CheckpointError
from repro.runtime.journal import DegradationEvent, RunHealth, RunJournal
from repro.runtime.parallel import SolverTask, run_solver_tasks
from repro.runtime.recovery import RecoveryPolicy

__all__ = ["APTQConfig", "APTQResult", "aptq_quantize_model"]

_ATTENTION_PROJECTIONS = ("q_proj", "k_proj", "v_proj", "o_proj")

#: On-disk schema version of APTQ run checkpoints.
_CHECKPOINT_VERSION = 1


@dataclasses.dataclass
class APTQConfig:
    """Knobs of an APTQ run (defaults follow the paper's setup)."""

    ratio_4bit: float = 1.0
    high_bits: int = 4
    low_bits: int = 2
    group_size: int | None = 32
    # Storage format of the high-bit layers, by registry name
    # (repro.quant.formats): "int" keeps the error-compensated solver for
    # every layer; any other registered format (nf4, fp4, mx4, sparse24,
    # ...) round-to-nearest-encodes the high-bit layers with that format
    # while low-bit layers stay on the int solver path.
    format: str = "int"
    percdamp: float = 0.01
    n_probes: int = 8
    batch_size: int = 16
    seed: int = 0
    # Attention q/k Hessian engine: "probed" is the exact Rademacher
    # Gauss-Newton estimator (the default, byte-identical to the original
    # pipeline); "kron" is the Kronecker-factored KronQ approximation
    # (repro.core.kron) — all heads share one input-Gram factorization,
    # trading a measured, bench-bounded accuracy delta for speed.
    hessian_mode: str = "probed"
    # Recompute attention Hessians per block on the partially quantized
    # model (sequential, the faithful protocol); False reuses the
    # full-precision Hessians from the sensitivity pass (faster).
    sequential: bool = True
    # Override the sensitivity-driven allocation with an explicit per-layer
    # bit map (used by the manual block-wise ablation of Table 3).
    allocation_override: dict[str, int] | None = None
    # Fault tolerance: write an atomic per-block checkpoint here, and with
    # resume=True continue an interrupted run from its first incomplete
    # block (requires sequential=True; the full-precision Hessian cache of
    # the non-sequential path is not checkpointed).
    checkpoint_path: str | Path | None = None
    resume: bool = False
    # Recovery-ladder policy applied to every solver call.
    recovery: RecoveryPolicy = dataclasses.field(default_factory=RecoveryPolicy)
    # Fan independent solver tasks within each protocol stage (attention
    # heads/projections of a block; its MLP layers; the tail layers) out
    # over this many worker processes; 0 runs serially.  Results are
    # bit-identical for every value (see repro.runtime.parallel).
    workers: int = 0


@dataclasses.dataclass
class APTQResult:
    """Everything a run produces, for analysis and reporting."""

    allocation: dict[str, int]
    sensitivities: dict[str, LayerSensitivity]
    layer_results: dict[str, SolverResult]
    average_bits: float
    health: RunHealth = dataclasses.field(
        default_factory=lambda: RunHealth(events=())
    )
    # Layers encoded by a non-"int" APTQConfig.format: their exact
    # QuantizedTensor payloads, disjoint from layer_results; feed to
    # pack_model(format_results=...) for lossless deployment.
    format_results: dict[str, QuantizedTensor] = dataclasses.field(
        default_factory=dict
    )


def _run_fingerprint(
    config: APTQConfig, model: LlamaModel, calibration: CalibrationSet
) -> str:
    """Digest of everything that determines a run's numerical trajectory.

    A checkpoint is only resumable by a run with the same fingerprint;
    runtime-only knobs (``checkpoint_path``, ``resume``, ``workers`` —
    parallel execution is bit-identical to serial) are excluded so
    toggling them never invalidates a checkpoint.
    """
    record = {
        "config": {
            key: value
            for key, value in dataclasses.asdict(config).items()
            if key not in ("checkpoint_path", "resume", "workers")
        },
        "model": model.config.to_dict(),
        "calibration": [
            calibration.corpus_name,
            calibration.seed,
            list(calibration.segments.shape),
        ],
    }
    payload = json.dumps(record, sort_keys=True, default=str).encode()
    return hashlib.sha256(payload).hexdigest()


def _save_run_checkpoint(
    path: Path,
    fingerprint: str,
    model: LlamaModel,
    next_block: int,
    allocation: dict[str, int],
    sensitivities: dict[str, LayerSensitivity],
    layer_results: dict[str, SolverResult],
    journal: RunJournal,
) -> None:
    """Atomically write the full resumable state of a run (one ``.npz``)."""
    arrays: dict[str, np.ndarray] = {}
    for name, array in model.state_dict().items():
        arrays[f"model/{name}"] = array
    layer_meta: dict[str, dict] = {}
    for name, result in layer_results.items():
        prefix = f"layer/{name}/"
        arrays[prefix + "quantized"] = result.quantized_weight
        arrays[prefix + "codes"] = result.group_result.codes
        arrays[prefix + "scales"] = result.group_result.scales
        arrays[prefix + "zeros"] = result.group_result.zeros
        if result.permutation is not None:
            arrays[prefix + "permutation"] = result.permutation
        layer_meta[name] = {
            "bits": result.group_result.bits,
            "group_size": result.group_result.group_size,
            "compensated_loss": result.compensated_loss,
            "mse": result.mse,
        }
    meta = {
        "version": _CHECKPOINT_VERSION,
        "kind": "aptq-run",
        "fingerprint": fingerprint,
        "next_block": next_block,
        "allocation": allocation,
        "layers": layer_meta,
        "sensitivities": {
            name: dataclasses.asdict(record)
            for name, record in sensitivities.items()
        },
        "events": [event.to_json() for event in journal.events],
    }
    save_checkpoint(path, arrays, meta)


def _unpack_run_checkpoint(
    arrays: dict[str, np.ndarray], meta: dict
) -> tuple[dict[str, np.ndarray], dict, int]:
    """Split a loaded run checkpoint into (model state, run state, next block)."""
    model_state = {
        name[len("model/"):]: array
        for name, array in arrays.items()
        if name.startswith("model/")
    }
    layer_results: dict[str, SolverResult] = {}
    for name, record in meta["layers"].items():
        prefix = f"layer/{name}/"
        group = GroupQuantResult(
            codes=arrays[prefix + "codes"],
            scales=arrays[prefix + "scales"],
            zeros=arrays[prefix + "zeros"],
            bits=int(record["bits"]),
            group_size=int(record["group_size"]),
        )
        layer_results[name] = SolverResult(
            quantized_weight=arrays[prefix + "quantized"],
            group_result=group,
            compensated_loss=float(record["compensated_loss"]),
            mse=float(record["mse"]),
            permutation=arrays.get(prefix + "permutation"),
        )
    run_state = {
        "allocation": {k: int(v) for k, v in meta["allocation"].items()},
        "sensitivities": {
            name: LayerSensitivity(**record)
            for name, record in meta["sensitivities"].items()
        },
        "layer_results": layer_results,
        "events": meta.get("events", []),
    }
    return model_state, run_state, int(meta["next_block"])


def _projection_tasks(
    name: str,
    weight: np.ndarray,
    hessians: list[np.ndarray] | np.ndarray | KronFactor,
    bits: int,
    config: APTQConfig,
) -> list[SolverTask]:
    """Solver tasks of one projection; one per head for per-head Hessians."""
    if isinstance(hessians, np.ndarray):
        return [
            SolverTask(
                key=name,
                weight=weight,
                hessian=hessians,
                bits=bits,
                group_size=config.group_size,
                percdamp=config.percdamp,
            )
        ]
    if isinstance(hessians, KronFactor):
        # Every head shares the input-Gram array object, so the factor
        # cache computes one Cholesky per block and rescales per head.
        d_model = weight.shape[0]
        return [
            SolverTask(
                key=f"{name}[head {head}]",
                weight=weight[:, cols],
                hessian=hessians.input_gram,
                bits=bits,
                group_size=config.group_size,
                percdamp=config.percdamp,
                hessian_scale=float(hessians.gains[head]),
            )
            for head, cols in enumerate(
                head_column_slices(d_model, hessians.n_heads)
            )
        ]
    d_model = weight.shape[0]
    return [
        SolverTask(
            key=f"{name}[head {head}]",
            weight=weight[:, cols],
            hessian=hessians[head],
            bits=bits,
            group_size=config.group_size,
            percdamp=config.percdamp,
        )
        for head, cols in enumerate(head_column_slices(d_model, len(hessians)))
    ]


def _merge_head_results(
    weight: np.ndarray, head_results: list[SolverResult], bits: int
) -> SolverResult:
    """Stitch per-head solver results into one layer-wide record.

    Heads share d_in and group boundaries, so the per-head grids
    concatenate along the output dimension into one layer-wide record.
    """
    quantized = np.empty_like(weight)
    slices = head_column_slices(weight.shape[0], len(head_results))
    for cols, result in zip(slices, head_results):
        quantized[:, cols] = result.quantized_weight
    merged_group = GroupQuantResult(
        codes=np.hstack([r.group_result.codes for r in head_results]),
        scales=np.hstack([r.group_result.scales for r in head_results]),
        zeros=np.hstack([r.group_result.zeros for r in head_results]),
        bits=bits,
        group_size=head_results[0].group_result.group_size,
    )
    return SolverResult(
        quantized_weight=quantized,
        group_result=merged_group,
        compensated_loss=sum(r.compensated_loss for r in head_results),
        mse=float(np.mean([r.mse for r in head_results])),
    )


def _try_resume(
    checkpoint_file: Path, fingerprint: str, journal: RunJournal
) -> tuple[dict[str, np.ndarray], dict, int] | None:
    """Load resumable state, or None when the checkpoint is unusable.

    A corrupt checkpoint (truncated, bit-flipped, unreadable) is survivable:
    it is recorded as a warning and the run restarts from scratch.  A
    *fingerprint mismatch* is a caller error — the checkpoint belongs to a
    different run configuration — and raises :class:`CheckpointError`.
    """
    try:
        arrays, meta = load_checkpoint(checkpoint_file)
    except FileNotFoundError:
        return None
    except CheckpointError as error:
        journal.record(
            "warning",
            message=f"ignoring corrupt checkpoint {checkpoint_file}: {error}",
            path=str(checkpoint_file),
        )
        return None
    if meta.get("kind") != "aptq-run" or meta.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {checkpoint_file} was written by an incompatible "
            "run (different model/config/calibration); delete it or point "
            "checkpoint_path elsewhere"
        )
    return _unpack_run_checkpoint(arrays, meta)


def _format_encode(
    layers: dict,
    names: list[str],
    fmt: QuantFormat,
    config: APTQConfig,
    format_results: dict[str, QuantizedTensor],
) -> None:
    """Round-to-nearest-encode ``names`` with ``fmt``, rewriting weights.

    Runs *after* a stage's Hessians were captured, so the sequential
    protocol's ordering (measure, then rewrite) is preserved.
    """
    for name in names:
        tensor = fmt.encode(layers[name].weight.data, config.group_size)
        layers[name].weight.data = fmt.decode(tensor)  # lint: disable=autograd-inplace-data
        format_results[name] = tensor


def aptq_quantize_model(
    model: LlamaModel,
    calibration: CalibrationSet,
    config: APTQConfig | None = None,
    **overrides,
) -> APTQResult:
    """Quantize ``model`` in place with APTQ; returns the full run record."""
    config = dataclasses.replace(config or APTQConfig(), **overrides)
    if config.hessian_mode not in HESSIAN_MODES:
        raise ValueError(
            f"unknown hessian_mode {config.hessian_mode!r}; expected one "
            f"of {HESSIAN_MODES}"
        )
    fmt: QuantFormat | None = None
    if config.format != "int":
        fmt = resolve_format(config.format)
        if config.checkpoint_path is not None:
            raise CheckpointError(
                "per-block checkpoints only cover the int solver path; "
                f"format {config.format!r} runs must drop checkpoint_path"
            )
    layers = model.quantizable_linears()
    journal = RunJournal()
    # Q/K/V (and gate/up) Hessians are bit-identical after the shared-Gram
    # dedup, so their damped Cholesky factors are computed once per block.
    factor_cache = HessianFactorCache()
    checkpoint_file = (
        Path(config.checkpoint_path) if config.checkpoint_path else None
    )
    fingerprint = _run_fingerprint(config, model, calibration)

    resumed = None
    if checkpoint_file is not None and config.resume:
        if not config.sequential:
            raise CheckpointError(
                "resume requires sequential=True: the non-sequential path "
                "depends on a full-precision Hessian cache that is not "
                "checkpointed"
            )
        resumed = _try_resume(checkpoint_file, fingerprint, journal)

    # ------------------------------------------------------------------
    # Step 2's sensitivity metric is computed first, on the full-precision
    # model (Algorithm 1 computes traces during the 4-bit pass, before any
    # requantization decisions are applied).  A resumed run restores the
    # sensitivities, allocation, and partially quantized weights instead.
    # ------------------------------------------------------------------
    layer_results: dict[str, SolverResult]
    format_results: dict[str, QuantizedTensor] = {}
    fp_hessian_cache: dict[int, AttentionHessians | KronAttentionHessians] = {}
    if resumed is not None:
        model_state, run_state, start_block = resumed
        model.load_state_dict(model_state)
        allocation = run_state["allocation"]
        sensitivities = run_state["sensitivities"]
        layer_results = run_state["layer_results"]
        journal.extend(
            DegradationEvent.from_json(event) for event in run_state["events"]
        )
        journal.record(
            "resume",
            message=f"resumed from {checkpoint_file} at block {start_block} "
            f"({len(layer_results)} layers already quantized)",
            next_block=start_block,
            path=str(checkpoint_file),
        )
    else:
        start_block = 0
        layer_results = {}
        sensitivities = compute_sensitivities(
            model,
            calibration,
            n_probes=config.n_probes,
            batch_size=config.batch_size,
            seed=config.seed,
            attention_cache=fp_hessian_cache,
            hessian_mode=config.hessian_mode,
            workers=config.workers,
        )
        if config.allocation_override is not None:
            missing = set(layers) - set(config.allocation_override)
            if missing:
                raise KeyError(
                    f"allocation override misses layers {sorted(missing)}"
                )
            allocation = dict(config.allocation_override)
        else:
            allocation = allocate_bits_by_sensitivity(
                sensitivities,
                config.ratio_4bit,
                high_bits=config.high_bits,
                low_bits=config.low_bits,
            )

    # ------------------------------------------------------------------
    # Step 1: sequential Hessian-attention-based quantization.  The
    # capture stream replaces the per-(block, batch) embedding re-forward:
    # it caches each batch's running hidden state and re-runs only the
    # just-quantized block when the next one is requested — bitwise
    # identical to the legacy capture_attention protocol (each cached
    # state is computed with exactly the weights the full re-forward
    # would have seen, since APTQ finishes a block before moving on).
    # ------------------------------------------------------------------
    capture_stream: CalibrationCaptureStream | None = None
    if config.sequential:
        capture_stream = CalibrationCaptureStream(
            model, calibration.segments, batch_size=config.batch_size
        )
    for block_index in range(start_block, len(model.blocks)):
        faults.maybe_fault("block-start", str(block_index))
        prefix = f"blocks.{block_index}."
        attention_names = [
            f"{prefix}self_attn.{proj}" for proj in _ATTENTION_PROJECTIONS
        ]
        mlp_names = [
            name
            for name in layers
            if name.startswith(prefix) and name not in attention_names
        ]

        if config.sequential:
            captures = capture_stream.block_captures(block_index)
            attn = model.blocks[block_index].self_attn
            if config.hessian_mode == "kron":
                hessians = kron_attention_hessians_from_captures(
                    attn,
                    captures,
                    n_probes=config.n_probes,
                    seed=config.seed + block_index,
                )
            else:
                hessians = attention_hessians_from_captures(
                    attn,
                    captures,
                    n_probes=config.n_probes,
                    seed=config.seed + block_index,
                )
            del captures
        else:
            hessians = fp_hessian_cache[block_index]

        per_projection: dict[
            str, list[np.ndarray] | np.ndarray | KronFactor
        ] = {
            "q_proj": hessians.q,
            "k_proj": hessians.k,
            "v_proj": hessians.v,
            "o_proj": hessians.o,
        }
        # All four projection Hessians were computed above, before any of
        # the block's weights change, so the per-projection (and per-head)
        # solves are independent: one executor stage.
        stage_tasks: list[SolverTask] = []
        spans: list[tuple[str, slice, bool]] = []
        format_stage: list[str] = []
        for projection in _ATTENTION_PROJECTIONS:
            name = f"{prefix}self_attn.{projection}"
            if fmt is not None and allocation[name] == config.high_bits:
                format_stage.append(name)
                continue
            tasks = _projection_tasks(
                name,
                layers[name].weight.data,
                per_projection[projection],
                allocation[name],
                config,
            )
            spans.append(
                (
                    name,
                    slice(len(stage_tasks), len(stage_tasks) + len(tasks)),
                    not isinstance(per_projection[projection], np.ndarray),
                )
            )
            stage_tasks.extend(tasks)
        stage_results = run_solver_tasks(
            stage_tasks,
            workers=config.workers,
            policy=config.recovery,
            journal=journal,
            cache=factor_cache,
        )
        for name, span, per_head in spans:
            linear = layers[name]
            if per_head:
                result = _merge_head_results(
                    linear.weight.data, stage_results[span], allocation[name]
                )
            else:
                (result,) = stage_results[span]
            # The APTQ core is a quantizer: weight rewrites are its output.
            linear.weight.data = result.quantized_weight  # lint: disable=autograd-inplace-data
            layer_results[name] = result
        if fmt is not None:
            _format_encode(layers, format_stage, fmt, config, format_results)

        if mlp_names:
            format_mlp = [
                name
                for name in mlp_names
                if fmt is not None and allocation[name] == config.high_bits
            ]
            solver_mlp = [
                name for name in mlp_names if name not in format_mlp
            ]
            if solver_mlp:
                stats = collect_input_stats(
                    model,
                    calibration.segments,
                    layer_names=solver_mlp,
                    batch_size=config.batch_size,
                )
                mlp_tasks = [
                    SolverTask(
                        key=name,
                        weight=layers[name].weight.data,
                        hessian=stats[name].normalised_hessian(),
                        bits=allocation[name],
                        group_size=config.group_size,
                        percdamp=config.percdamp,
                    )
                    for name in solver_mlp
                ]
                mlp_results = run_solver_tasks(
                    mlp_tasks,
                    workers=config.workers,
                    policy=config.recovery,
                    journal=journal,
                    cache=factor_cache,
                )
                for name, result in zip(solver_mlp, mlp_results):
                    layers[name].weight.data = result.quantized_weight  # lint: disable=autograd-inplace-data
                    layer_results[name] = result
            if fmt is not None:
                _format_encode(layers, format_mlp, fmt, config, format_results)

        if checkpoint_file is not None:
            journal.record(
                "checkpoint",
                message=f"block {block_index} complete; checkpoint written",
                block=block_index,
                path=str(checkpoint_file),
            )
            _save_run_checkpoint(
                checkpoint_file,
                fingerprint,
                model,
                block_index + 1,
                allocation,
                sensitivities,
                layer_results,
                journal,
            )

    # Any non-block layer (untied lm_head) quantizes with the GPTQ Hessian.
    remaining = [
        name
        for name in layers
        if name not in layer_results and name not in format_results
    ]
    format_tail = [
        name
        for name in remaining
        if fmt is not None and allocation[name] == config.high_bits
    ]
    remaining = [name for name in remaining if name not in format_tail]
    if fmt is not None:
        _format_encode(layers, format_tail, fmt, config, format_results)
    if remaining:
        stats = collect_input_stats(
            model,
            calibration.segments,
            layer_names=remaining,
            batch_size=config.batch_size,
        )
        tail_tasks = [
            SolverTask(
                key=name,
                weight=layers[name].weight.data,
                hessian=stats[name].normalised_hessian(),
                bits=allocation[name],
                group_size=config.group_size,
                percdamp=config.percdamp,
            )
            for name in remaining
        ]
        tail_results = run_solver_tasks(
            tail_tasks,
            workers=config.workers,
            policy=config.recovery,
            journal=journal,
            cache=factor_cache,
        )
        for name, result in zip(remaining, tail_results):
            layers[name].weight.data = result.quantized_weight  # lint: disable=autograd-inplace-data
            layer_results[name] = result
        if checkpoint_file is not None:
            journal.record(
                "checkpoint",
                message="tail layers complete; final checkpoint written",
                block=len(model.blocks),
                path=str(checkpoint_file),
            )
            _save_run_checkpoint(
                checkpoint_file,
                fingerprint,
                model,
                len(model.blocks),
                allocation,
                sensitivities,
                layer_results,
                journal,
            )

    if fmt is not None:
        # Storage-honest accounting: format-encoded layers occupy the
        # format's code width, whatever high_bits requested.
        for name in format_results:
            allocation[name] = fmt.bits
    counts = {name: layers[name].weight.size for name in layers}
    return APTQResult(
        allocation=allocation,
        sensitivities=sensitivities,
        layer_results=layer_results,
        average_bits=average_bits(allocation, counts),
        health=journal.health(),
        format_results=format_results,
    )
