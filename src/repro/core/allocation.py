"""Mixed-precision bit allocation (paper Eq. (18) and Algorithm 1, step 2).

Layers are sorted by descending sensitivity; the most sensitive layers get
``high_bits`` until the fraction of weights at high precision reaches the
ratio ``R``, the rest get ``low_bits``.  ``average_bits`` implements
Eq. (18) generalised to exact weight counts.
"""

from __future__ import annotations

from repro.core.sensitivity import LayerSensitivity
from repro.nn.transformer import LlamaModel

__all__ = [
    "allocate_bits_by_sensitivity",
    "manual_blockwise_allocation",
    "average_bits",
]


def allocate_bits_by_sensitivity(
    sensitivities: dict[str, LayerSensitivity],
    ratio_high: float,
    high_bits: int = 4,
    low_bits: int = 2,
) -> dict[str, int]:
    """Assign per-layer bit-widths from Hessian-trace sensitivities.

    ``ratio_high`` is the paper's R: the target fraction of weights held at
    ``high_bits``.  Greedy by descending mean trace; a layer is promoted to
    high precision while the running high-precision weight fraction stays
    closest to R (the first layer that would overshoot R by more than it
    undershoots is left at low precision, matching "calibrate the bit
    allocation in line with ... R").
    """
    if not 0.0 <= ratio_high <= 1.0:
        raise ValueError("ratio_high must be in [0, 1]")
    total = sum(s.n_weights for s in sensitivities.values())
    if total == 0:
        raise ValueError("no weights to allocate")
    ordered = sorted(
        sensitivities.values(), key=lambda s: (-s.mean_trace, s.name)
    )
    allocation: dict[str, int] = {}
    high_count = 0
    for record in ordered:
        undershoot = abs(high_count / total - ratio_high)
        overshoot = abs((high_count + record.n_weights) / total - ratio_high)
        if overshoot <= undershoot:
            allocation[record.name] = high_bits
            high_count += record.n_weights
        else:
            allocation[record.name] = low_bits
    return allocation


def manual_blockwise_allocation(
    model: LlamaModel,
    ratio_high: float,
    high_bits: int = 4,
    low_bits: int = 2,
) -> dict[str, int]:
    """The ablation baseline: uniform per-block allocation, no sensitivity.

    All layers of a transformer block share one precision; the first blocks
    (in depth order) are assigned ``high_bits`` until the weight fraction
    reaches R.  This is the "manual block-wise quantization" of Table 3.
    """
    if not 0.0 <= ratio_high <= 1.0:
        raise ValueError("ratio_high must be in [0, 1]")
    layers = model.quantizable_linears()
    total = sum(linear.weight.size for linear in layers.values())
    allocation: dict[str, int] = {}
    high_count = 0
    for block_index in range(len(model.blocks)):
        block_layers = {
            name: linear
            for name, linear in layers.items()
            if name.startswith(f"blocks.{block_index}.")
        }
        block_weights = sum(l.weight.size for l in block_layers.values())
        undershoot = abs(high_count / total - ratio_high)
        overshoot = abs((high_count + block_weights) / total - ratio_high)
        if overshoot <= undershoot:
            bits = high_bits
            high_count += block_weights
        else:
            bits = low_bits
        for name in block_layers:
            allocation[name] = bits
    for name in layers:
        if name not in allocation:  # e.g. an untied lm_head
            allocation[name] = high_bits
    return allocation


def average_bits(
    allocation: dict[str, int],
    weight_counts: dict[str, int],
) -> float:
    """Weight-count-weighted average bit-width (paper Eq. (18))."""
    missing = set(allocation) - set(weight_counts)
    if missing:
        raise KeyError(f"missing weight counts for {sorted(missing)}")
    total = sum(weight_counts[name] for name in allocation)
    if total == 0:
        raise ValueError("no weights")
    weighted = sum(
        allocation[name] * weight_counts[name] for name in allocation
    )
    return weighted / total
