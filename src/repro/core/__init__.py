"""APTQ core: attention-aware Hessians and Hessian-trace mixed precision.

The two contributions of the paper live here:

1. :mod:`repro.core.attention_grads` + :mod:`repro.core.hessian` — the
   gradients of the attention-block output with respect to each projection
   weight (paper Eqs. (9), (10), (12), (13)) and the Levenberg-Marquardt
   Hessians ``H = 2 F'(W) F'(W)^T`` (Eq. (7)) built from them.
2. :mod:`repro.core.sensitivity` + :mod:`repro.core.allocation` — the
   average-Hessian-trace sensitivity metric and the 2/4-bit allocation
   achieving average bits ``4R + 2(1-R)`` (Eq. (18)).

:mod:`repro.core.aptq` ties them together into the end-to-end Algorithm 1.
"""

from repro.core.attention_grads import (
    AttentionWeights,
    attention_seeded_gradients,
    rope_adjoint,
)
from repro.core.hessian import (
    AttentionHessians,
    SharedGramCache,
    attention_hessians,
    capture_attention,
    exact_gauss_newton,
)
from repro.core.trace import hutchinson_trace
from repro.core.sensitivity import LayerSensitivity, compute_sensitivities
from repro.core.allocation import (
    allocate_bits_by_sensitivity,
    average_bits,
    manual_blockwise_allocation,
)
from repro.core.aptq import APTQConfig, APTQResult, aptq_quantize_model

__all__ = [
    "AttentionWeights",
    "attention_seeded_gradients",
    "rope_adjoint",
    "AttentionHessians",
    "SharedGramCache",
    "attention_hessians",
    "capture_attention",
    "exact_gauss_newton",
    "hutchinson_trace",
    "LayerSensitivity",
    "compute_sensitivities",
    "allocate_bits_by_sensitivity",
    "manual_blockwise_allocation",
    "average_bits",
    "APTQConfig",
    "APTQResult",
    "aptq_quantize_model",
]
