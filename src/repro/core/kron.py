"""KronQ: Kronecker-factored q/k attention Hessians (error-bounded tier).

The probed Gauss-Newton estimator of :mod:`repro.core.hessian` builds each
head's ``(D, D)`` q/k Hessian from full seeded-gradient outer products —
accurate, but the per-head GEMMs dominate calibration time.  Following the
Kronecker factorization of KronQ (arxiv 2607.07964), the exact per-head
matrix

    H_h = (2/n) (1/P) Σ_p  X^T ĝ_{p,h} ĝ_{p,h}^T X

(``X`` the ``(n, D)`` block input, ``ĝ_{p,h}`` the ``(n, d)`` pre-RoPE-input
gradient of probe ``p`` at head ``h``) is approximated by decoupling the
token-side factor from the input Gram: treating ``ĝ ĝ^T`` as isotropic over
tokens, ``H_h ≈ A ⊗ B_h`` collapses on the input dimension to

    H_h ≈ g_h · A,    A = (2/n) X^T X,    g_h = tr(B_h),
    B_h = (1/(P·n)) Σ_p ĝ_{p,h}^T ĝ_{p,h}    (the (d, d) output-side factor).

Every head's Hessian is a positive multiple of one shared matrix, so the
solver factorizes ``A`` once per block and rescales the inverse Cholesky
factor per head (``HessianFactorCache.scaled_factor`` — the "Cholesky of a
Kronecker product factorizes per-factor" identity specialised to the
input-dimension marginal the solver consumes).  ``v_proj``/``o_proj`` keep
their exact closed forms; only the softmax-nonlinear q/k pair is
approximated.

This path is *error-bounded*, not bit-identical: the approximation error
and its downstream perplexity effect are measured by
``benchmarks/perf/calibration_speed.py`` and committed as the
``calibration-kron`` bench record with declared bounds.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.attention_grads import attention_preactivation_gradients_batched
from repro.core.hessian import SharedGramCache
from repro.nn.attention import AttentionCapture, MultiHeadAttention

__all__ = [
    "HESSIAN_MODES",
    "KronFactor",
    "KronAttentionHessians",
    "KronHessianAccumulator",
    "kron_attention_hessians_from_captures",
]

#: Recognised attention Hessian engines: ``probed`` is the bit-exact
#: Rademacher Gauss-Newton estimator (:mod:`repro.core.hessian`); ``kron``
#: is this module's Kronecker-factored approximation.
HESSIAN_MODES = ("probed", "kron")


@dataclasses.dataclass(frozen=True)
class KronFactor:
    """Kronecker-factored per-head Hessian family ``{g_h · A}``.

    ``input_gram`` is the shared ``(D, D)`` input-side factor ``A`` (one
    array object for every head, so the solver's content-keyed factor
    cache sees a single Hessian); ``gains`` holds the per-head scalars
    ``g_h = tr(B_h)``; ``output_factors`` keeps the raw ``(h, d, d)``
    output-side factors ``B_h`` for diagnostics.
    """

    input_gram: np.ndarray
    gains: np.ndarray
    output_factors: np.ndarray

    @property
    def n_heads(self) -> int:
        """Number of heads in the family."""
        return int(self.gains.shape[0])

    def dense(self, head: int) -> np.ndarray:
        """Materialised ``(D, D)`` Hessian of one head: ``g_h · A``."""
        return self.gains[head] * self.input_gram


@dataclasses.dataclass
class KronAttentionHessians:
    """Per-projection Hessians of one block under ``hessian_mode="kron"``.

    Duck-compatible with :class:`repro.core.hessian.AttentionHessians`
    where the pipeline needs it (``full_matrix`` / ``mean_trace`` for the
    sensitivity ranking); ``q``/``k`` are :class:`KronFactor` families
    while ``v``/``o`` keep the exact closed forms.
    """

    q: KronFactor
    k: KronFactor
    v: list[np.ndarray]
    o: np.ndarray

    def full_matrix(self, projection: str) -> np.ndarray:
        """Head-averaged Hessian of a projection."""
        if projection == "o_proj":
            return self.o
        if projection == "v_proj":
            return np.mean(self.v, axis=0)
        factor = {"q_proj": self.q, "k_proj": self.k}[projection]
        return float(np.mean(factor.gains)) * factor.input_gram

    def mean_trace(self, projection: str) -> float:
        """Average Hessian trace (trace / dimension) of a projection.

        For q/k this is matrix-free: ``mean(gains) · tr(A) / D``.
        """
        if projection == "o_proj":
            return float(np.trace(self.o) / self.o.shape[0])
        if projection == "v_proj":
            diagonals = [np.diagonal(m) for m in self.v]
            diag_mean = np.mean(diagonals, axis=0)
            return float(diag_mean.sum() / diag_mean.shape[0])
        factor = {"q_proj": self.q, "k_proj": self.k}[projection]
        gram = factor.input_gram
        return float(
            np.mean(factor.gains) * np.trace(gram) / gram.shape[0]
        )


class KronHessianAccumulator:
    """Streaming accumulator for one block's Kronecker-factored Hessians.

    Mirrors :class:`repro.core.hessian.AttentionHessianAccumulator` batch
    for batch — identical rng consumption (one ``(p, b, s, D)`` Rademacher
    draw per batch) and identical exact closed forms for ``v``/``o`` — but
    replaces the q/k outer-product GEMMs with the input Gram (deduplicated
    through a :class:`~repro.core.hessian.SharedGramCache`) and the small
    ``(d, d)`` output-side factors.
    """

    def __init__(
        self,
        attn: MultiHeadAttention,
        n_probes: int = 8,
        seed: int = 0,
        gram_cache: SharedGramCache | None = None,
    ) -> None:
        if n_probes <= 0:
            raise ValueError("n_probes must be positive")
        self.attn = attn
        self.n_probes = n_probes
        self.rng = np.random.default_rng(seed)
        self.gram_cache = gram_cache if gram_cache is not None else SharedGramCache()
        d_model = attn.d_model
        n_heads = attn.n_heads
        d_head = attn.d_head
        self.input_gram = np.zeros((d_model, d_model))
        self.b_q = np.zeros((n_heads, d_head, d_head))
        self.b_k = np.zeros((n_heads, d_head, d_head))
        self.h_v = [np.zeros((d_model, d_model)) for _ in range(n_heads)]
        self.h_o = np.zeros((d_model, d_model))
        self.n_tokens = 0
        w_o = attn.o_proj.weight.data
        self.head_gain = np.array(
            [
                (w_o[h * d_head : (h + 1) * d_head] ** 2).sum() / d_head
                for h in range(n_heads)
            ]
        )

    def add(self, capture: AttentionCapture) -> None:
        """Accumulate one calibration batch's contribution."""
        attn = self.attn
        d_model = attn.d_model
        n_heads = attn.n_heads
        b, s, _ = capture.x.shape
        self.n_tokens += b * s

        # Shared input-side factor A (one Gram per distinct activation).
        self.gram_cache.reset()
        flat = capture.x.reshape(b * s, d_model)
        self.input_gram += self.gram_cache.gram(capture.x, flat)

        # Exact closed forms for o_proj and v_proj, as in the probed path.
        heads_flat = capture.heads.reshape(b * s, d_model)
        self.h_o += d_model * (heads_flat.T @ heads_flat)
        a = np.einsum("bhst,btD->bhsD", capture.probs, capture.x)
        for h in range(n_heads):
            a_flat = a[:, h].reshape(b * s, d_model)
            # Per-block-local accumulation (one worker per block).
            self.h_v[h] += self.head_gain[h] * (a_flat.T @ a_flat)  # lint: disable=wp-order-dependent-reduction

        # Output-side factors B_h from the pre-input probe gradients —
        # the X contraction the Kronecker structure factors away.
        probes = self.rng.choice(
            [-1.0, 1.0], size=(self.n_probes, b, s, d_model)
        )
        gq_pre, gk_pre = attention_preactivation_gradients_batched(
            attn, capture, probes
        )
        self.b_q += np.einsum("pbhsd,pbhse->hde", gq_pre, gq_pre)
        self.b_k += np.einsum("pbhsd,pbhse->hde", gk_pre, gk_pre)

    def finalize(self) -> KronAttentionHessians:
        """Per-token-normalised Kronecker Hessians for all batches seen."""
        if self.n_tokens == 0:
            raise ValueError("no calibration tokens")
        norm = 2.0 / self.n_tokens
        input_gram = norm * self.input_gram
        input_gram.setflags(write=False)

        def factor(b_raw: np.ndarray) -> KronFactor:
            """Normalise one projection's output-side factors into gains."""
            b_norm = b_raw / (self.n_probes * self.n_tokens)
            gains = np.trace(b_norm, axis1=1, axis2=2)
            # A head with no gradient signal still needs a positive scale
            # for the shared factorization; tiny keeps H ≈ 0 semantics.
            gains = np.maximum(gains, np.finfo(np.float64).tiny)
            return KronFactor(
                input_gram=input_gram, gains=gains, output_factors=b_norm
            )

        return KronAttentionHessians(
            q=factor(self.b_q),
            k=factor(self.b_k),
            v=[norm * m for m in self.h_v],
            o=norm * self.h_o,
        )


def kron_attention_hessians_from_captures(
    attn: MultiHeadAttention,
    captures: Sequence[AttentionCapture],
    n_probes: int = 8,
    seed: int = 0,
    gram_cache: SharedGramCache | None = None,
) -> KronAttentionHessians:
    """Kronecker-factored block Hessians from pre-computed captures.

    Drop-in sibling of
    :func:`repro.core.hessian.attention_hessians_from_captures` for
    ``APTQConfig.hessian_mode="kron"``.
    """
    accumulator = KronHessianAccumulator(
        attn, n_probes=n_probes, seed=seed, gram_cache=gram_cache
    )
    for capture in captures:
        accumulator.add(capture)
    return accumulator.finalize()
