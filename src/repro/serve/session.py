"""Request/response surface of the serving layer.

A caller builds a :class:`GenerationRequest`, submits it to the scheduler
and receives a :class:`RequestHandle` — an awaitable, streamable view of
the request's lifecycle.  Every terminal outcome is typed: completion
yields the full token sequence, failure raises one of the
:class:`~repro.runtime.errors.ServeError` subclasses (deadline, shed,
cancellation, worker failure), and nothing is ever silently dropped.

Time is injected.  :class:`WallClock` serves real traffic;
:class:`ManualClock` gives the chaos tests a deterministic timeline where
injected delays (:func:`repro.runtime.faults.fault_value`) advance time by
exact amounts, so deadline enforcement is reproducible bit for bit.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import AsyncIterator, Optional

import numpy as np

__all__ = [
    "GenerationRequest",
    "ManualClock",
    "RequestHandle",
    "WallClock",
]


class WallClock:
    """Real time: ``now`` is monotonic seconds, ``advance`` sleeps."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()

    def advance(self, seconds: float) -> None:
        """Block for ``seconds`` (used for worker-restart backoff)."""
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """Deterministic virtual time for tests: advances only on demand."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move virtual time forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += float(seconds)


@dataclasses.dataclass(frozen=True)
class GenerationRequest:
    """One generation job: prompt, budget, priority and deadline.

    ``deadline`` is absolute scheduler-clock time (seconds); ``None``
    disables enforcement.  ``seed`` feeds a per-request generator when
    ``temperature > 0`` — sampling state lives in the scheduler, never in
    a worker, so crash replay resumes the exact random stream.  Higher
    ``priority`` wins under overload; ties break by submission order.
    """

    request_id: str
    prompt: np.ndarray
    max_new_tokens: int
    temperature: float = 0.0
    seed: int = 0
    priority: int = 0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        prompt = np.asarray(self.prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be positive")
        object.__setattr__(self, "prompt", prompt)


_STREAM_END = object()


class RequestHandle:
    """Caller-side view of a submitted request.

    Tokens stream through a *bounded* queue sized to the request's token
    budget (generation can never outrun the bound, so the scheduler never
    blocks on a slow consumer).  ``await result()`` returns the full
    sequence or raises the request's typed failure.
    """

    def __init__(self, request: GenerationRequest) -> None:
        self.request = request
        self.state = "queued"
        self.tokens: list[int] = []
        self.error: Optional[BaseException] = None
        self.submitted_at: float = 0.0
        self.finished_at: float = 0.0
        self.cancel_requested = False
        # +1 slot for the end-of-stream sentinel; the bound is a hard
        # invariant, not backpressure: at most max_new_tokens are ever put.
        self._stream: asyncio.Queue = asyncio.Queue(
            maxsize=request.max_new_tokens + 1
        )
        self._done = asyncio.Event()

    @property
    def request_id(self) -> str:
        """The wrapped request's id."""
        return self.request.request_id

    @property
    def done(self) -> bool:
        """Whether the request reached a terminal state."""
        return self._done.is_set()

    @property
    def latency(self) -> float:
        """Seconds from submission to the terminal state."""
        return self.finished_at - self.submitted_at

    def cancel(self) -> None:
        """Request cooperative cancellation.

        The scheduler observes the flag at its next step and fails the
        request with :class:`~repro.runtime.errors.RequestCancelled`;
        tokens already streamed remain valid.
        """
        self.cancel_requested = True

    # -- scheduler-side transitions (not part of the caller API) ---------
    def _push_token(self, token: int) -> None:
        """Record and stream one generated token."""
        self.tokens.append(token)
        self._stream.put_nowait(token)

    def _finish(self, state: str, now: float,
                error: Optional[BaseException] = None) -> None:
        """Move to a terminal state exactly once."""
        if self._done.is_set():
            return
        self.state = state
        self.error = error
        self.finished_at = now
        self._stream.put_nowait(_STREAM_END)
        self._done.set()

    # -- caller API -------------------------------------------------------
    async def stream(self) -> AsyncIterator[int]:
        """Yield generated tokens as they land; ends at the terminal state.

        A failed request's stream simply ends early — call
        :meth:`result` afterwards to surface the typed error.
        """
        while True:
            item = await self._stream.get()
            if item is _STREAM_END:
                return
            yield item

    async def result(self) -> np.ndarray:
        """Wait for completion; returns ``prompt + generated`` token ids.

        Raises the request's typed :class:`~repro.runtime.errors.ServeError`
        (or :class:`~repro.runtime.errors.RequestCancelled`) on failure.
        """
        await self._done.wait()
        if self.error is not None:
            raise self.error
        return np.concatenate(
            [self.request.prompt, np.asarray(self.tokens, dtype=np.int64)]
        )

    def exception(self) -> Optional[BaseException]:
        """The terminal error, or ``None`` (not finished / completed)."""
        return self.error
