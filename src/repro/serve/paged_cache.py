"""Paged KV cache: a block-pool allocator behind the ragged decode path.

:class:`repro.nn.attention.KVCache` preallocates one contiguous
``max_seq_len`` buffer per layer per sequence, which forces every row of a
batch to share one length.  :class:`PagedKVCache` lifts that restriction the
way vLLM's PagedAttention does: key/value storage is a fixed pool of
fixed-size *blocks* shared by all sequences, and each sequence maps its
token positions onto pool blocks through a block table.  Sequences of any
length can therefore join and leave a running batch, and freeing a finished
sequence returns its blocks to the pool immediately.

Two access protocols are exposed:

* :meth:`PagedKVCache.layer_view` returns an adapter with the
  ``.length`` / ``.append(k, v) -> (keys, values)`` surface of
  :class:`~repro.nn.attention.KVCache`, so
  :meth:`~repro.nn.transformer.LlamaModel.prefill` works per sequence
  unchanged.
* :meth:`PagedKVCache.append` is the ``append(layer, row, ...)`` backend
  consumed by :meth:`~repro.nn.transformer.LlamaModel.decode_step_ragged`
  via :class:`RaggedView`.

Gathered histories are exact copies of what was appended (block writes and
fancy-index gathers move bytes, never round), returned as read-only arrays;
attention over a paged sequence is therefore bit-identical to attention
over a contiguous :class:`~repro.nn.attention.KVCache` — the property the
serving layer's determinism contract rests on.

Exhaustion is a typed, recoverable signal: :meth:`reserve` raises
:class:`~repro.runtime.errors.CacheExhausted` *before* any bytes are
written, so the scheduler can preempt a victim sequence and retry without
ever observing a half-written cache.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.runtime.errors import CacheExhausted

__all__ = ["PagedKVCache", "RaggedView"]


class PagedKVCache:
    """Block-pooled KV storage shared by all sequences of one worker.

    ``num_blocks`` blocks of ``block_size`` token slots each are shared
    across sequences; every block stores all ``n_layers`` layers, so one
    block reservation covers the whole depth of the model.  Pools are
    allocated lazily on the first append (head count, head dimension and
    dtype are taken from the first key tensor seen).
    """

    def __init__(
        self, n_layers: int, block_size: int = 16, num_blocks: int = 64
    ) -> None:
        if n_layers < 1:
            raise ValueError("n_layers must be positive")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if num_blocks < 1:
            raise ValueError("num_blocks must be positive")
        self.n_layers = int(n_layers)
        self.block_size = int(block_size)
        self.num_blocks = int(num_blocks)
        # Free list is a stack; blocks are handed out from the end and
        # returned in free() order, keeping allocation deterministic for a
        # deterministic sequence of operations.
        self._free: list[int] = list(range(self.num_blocks - 1, -1, -1))
        self._tables: dict[str, list[int]] = {}
        self._lengths: dict[str, list[int]] = {}
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None

    # -- pool accounting -------------------------------------------------
    @property
    def free_blocks(self) -> int:
        """Blocks currently available in the pool."""
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        """Blocks currently assigned to live sequences."""
        return self.num_blocks - len(self._free)

    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` positions."""
        if tokens <= 0:
            return 0
        return -(-tokens // self.block_size)

    def can_reserve(self, seq_id: str, total_tokens: int) -> bool:
        """Whether :meth:`reserve` for ``total_tokens`` would succeed."""
        held = len(self._tables.get(seq_id, ()))
        return self.blocks_for(total_tokens) - held <= len(self._free)

    def seq_ids(self) -> tuple[str, ...]:
        """Live sequence ids, in allocation order."""
        return tuple(self._tables)

    def length(self, seq_id: str, layer: int = 0) -> int:
        """Committed token count of a sequence at ``layer``."""
        return self._lengths[seq_id][layer]

    # -- sequence lifecycle ----------------------------------------------
    def allocate(self, seq_id: str) -> None:
        """Register an empty sequence (no blocks reserved yet)."""
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id!r} is already allocated")
        self._tables[seq_id] = []
        self._lengths[seq_id] = [0] * self.n_layers

    def reserve(self, seq_id: str, total_tokens: int) -> None:
        """Grow the block table to cover ``total_tokens`` positions.

        Allocation-only — no cache bytes are touched — so a
        :class:`CacheExhausted` here leaves every sequence consistent and
        the scheduler free to preempt and retry.
        """
        table = self._tables[seq_id]
        needed = self.blocks_for(total_tokens) - len(table)
        if needed <= 0:
            return
        if needed > len(self._free):
            raise CacheExhausted(
                f"KV block pool exhausted: sequence {seq_id!r} needs "
                f"{needed} more block(s), {len(self._free)} free "
                f"(pool {self.num_blocks} x {self.block_size} tokens)"
            )
        for _ in range(needed):
            table.append(self._free.pop())

    def free(self, seq_id: str) -> int:
        """Release a sequence's blocks back to the pool; returns the count."""
        table = self._tables.pop(seq_id, None)
        self._lengths.pop(seq_id, None)
        if table is None:
            return 0
        self._free.extend(table)
        return len(table)

    def free_all(self) -> None:
        """Release every sequence (worker reset)."""
        for seq_id in list(self._tables):
            self.free(seq_id)

    # -- storage ----------------------------------------------------------
    def _ensure_pools(self, template: np.ndarray) -> None:
        """Allocate the K/V pools from the first key tensor's geometry."""
        if self._keys is not None:
            return
        heads, d_head = template.shape[1], template.shape[3]
        shape = (self.n_layers, self.num_blocks, heads, self.block_size, d_head)
        self._keys = np.zeros(shape, dtype=template.dtype)
        self._values = np.zeros(shape, dtype=template.dtype)

    def append(
        self, layer: int, seq_id: str, k: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append ``(1, heads, t, d_head)`` keys/values for one sequence.

        Returns the sequence's full cached history at ``layer`` as two
        read-only ``(1, heads, length, d_head)`` arrays, mirroring
        :meth:`repro.nn.attention.KVCache.append`.
        """
        k = np.asarray(k)
        v = np.asarray(v)
        if k.ndim != 4 or k.shape[0] != 1:
            raise ValueError(
                f"expected (1, heads, t, d_head) keys, got {k.shape}"
            )
        self._ensure_pools(k)
        lengths = self._lengths[seq_id]
        start = lengths[layer]
        step = k.shape[2]
        end = start + step
        self.reserve(seq_id, end)
        table = self._tables[seq_id]
        pos = start
        taken = 0
        while pos < end:
            block = table[pos // self.block_size]
            offset = pos % self.block_size
            take = min(self.block_size - offset, end - pos)
            sel = (layer, block, slice(None), slice(offset, offset + take))
            self._keys[sel] = k[0][:, taken : taken + take]
            self._values[sel] = v[0][:, taken : taken + take]
            pos += take
            taken += take
        lengths[layer] = end
        return self.gather(layer, seq_id)

    def gather(
        self, layer: int, seq_id: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """The sequence's cached ``(1, heads, length, d_head)`` history.

        Returned arrays are freshly gathered copies with the write flag
        cleared — callers cannot corrupt pool state through them.
        """
        length = self._lengths[seq_id][layer]
        table = self._tables[seq_id]
        blocks = np.asarray(table[: self.blocks_for(length)], dtype=np.intp)
        out = []
        for pool in (self._keys, self._values):
            stacked = pool[layer, blocks]  # (n_blocks, heads, block, d_head)
            heads, d_head = stacked.shape[1], stacked.shape[3]
            flat = stacked.transpose(1, 0, 2, 3).reshape(heads, -1, d_head)
            history = np.ascontiguousarray(flat[None, :, :length])
            history.flags.writeable = False
            out.append(history)
        return out[0], out[1]

    # -- model-facing adapters -------------------------------------------
    def layer_view(self, seq_id: str, layer: int) -> "_LayerView":
        """A per-``(sequence, layer)`` adapter with the ``KVCache`` surface.

        ``[cache.layer_view(seq, l) for l in range(n_layers)]`` drops into
        :meth:`~repro.nn.transformer.LlamaModel.prefill` in place of a
        ``KVCache`` list.
        """
        return _LayerView(self, seq_id, layer)

    def ragged_view(self, seq_ids: list[str]) -> "RaggedView":
        """The ``append(layer, row, k, v)`` backend for a decode batch."""
        return RaggedView(self, seq_ids)


class _LayerView:
    """Adapter giving one (sequence, layer) the ``KVCache`` protocol."""

    def __init__(self, cache: PagedKVCache, seq_id: str, layer: int) -> None:
        self._cache = cache
        self._seq_id = seq_id
        self._layer = layer

    @property
    def length(self) -> int:
        """Committed token count, as ``KVCache.length``."""
        return self._cache.length(self._seq_id, self._layer)

    def append(
        self, k: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append new keys/values; returns the full read-only history."""
        return self._cache.append(self._layer, self._seq_id, k, v)


class RaggedView:
    """Maps decode-batch row indices onto paged sequences.

    The backend object handed to
    :meth:`~repro.nn.transformer.LlamaModel.decode_step_ragged`: row ``b``
    of the batch reads and extends sequence ``seq_ids[b]``.
    """

    def __init__(self, cache: PagedKVCache, seq_ids: list[str]) -> None:
        self._cache = cache
        self._seq_ids = list(seq_ids)

    def append(
        self, layer: int, row: int, k: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append row ``row``'s new K/V at ``layer``; returns its history."""
        return self._cache.append(layer, self._seq_ids[row], k, v)
