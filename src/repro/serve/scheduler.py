"""Continuous-batching scheduler with deadlines, backpressure and replay.

:class:`ContinuousBatchScheduler` drives one supervised decode worker
(:mod:`repro.serve.supervisor`) over a stream of generation requests.
Unlike :meth:`~repro.nn.transformer.LlamaModel.generate_batch`, requests
of any length join and leave the running batch between decode steps
(continuous batching over the paged KV cache); one call to :meth:`step`
advances the whole system by at most one batched decode step.

Robustness contract (asserted end-to-end by the chaos suite):

* **Bounded admission.**  :meth:`submit` on a full queue fails fast with
  :class:`~repro.runtime.errors.AdmissionError` carrying a
  ``retry_after`` hint — callers are never silently buffered.
* **Deadlines.**  A request past its deadline fails with
  :class:`~repro.runtime.errors.DeadlineExceeded` at the next step,
  whether queued or mid-decode; cooperative cancellation
  (:meth:`~repro.serve.session.RequestHandle.cancel`) works the same way.
* **Graceful degradation.**  Repeated deadline misses halve the effective
  batch size (journaled ``degrade`` events) and shed the lowest-priority
  queued work with :class:`~repro.runtime.errors.RequestShed`; sustained
  clean steps grow the batch back (``recover``).
* **Crash recovery.**  When the supervisor reports a crashed or stalled
  worker, every in-flight sequence is requeued for *replay*: its prompt
  plus already-generated tokens are re-prefilled on the fresh worker and
  decoding resumes from the exact same state.  Sampling state lives in
  the scheduler (workers return logits), so a replayed request's output
  is bit-identical to an unfaulted run.  Requests whose replay budget
  (``max_request_retries``) is exhausted fail with
  :class:`~repro.runtime.errors.WorkerFailure`.
* **Preemption, never corruption.**  KV-pool exhaustion surfaces as
  :class:`~repro.runtime.errors.CacheExhausted` *before* any cache write;
  the scheduler evicts a strictly lower-priority victim (to be replayed
  later) and retries.  ``CacheExhausted`` is never a request failure.

Every lifecycle event is journaled with the owning ``request_id``
(:mod:`repro.runtime.journal`), so a per-request timeline can be
reconstructed after the fact (:func:`repro.report.health.format_request_timeline`).
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.nn import functional as F
from repro.runtime.errors import (
    AdmissionError,
    CacheExhausted,
    DeadlineExceeded,
    RequestCancelled,
    RequestShed,
    ServeError,
    WorkerCrashed,
    WorkerFailure,
    WorkerStalled,
)
from repro.runtime.journal import RunJournal
from repro.serve.engine import InProcessWorker
from repro.serve.session import GenerationRequest, RequestHandle, WallClock
from repro.serve.supervisor import WorkerSupervisor

__all__ = ["ContinuousBatchScheduler", "ServeConfig"]


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Scheduler tuning knobs; the defaults suit the test-scale models."""

    max_queue: int = 32
    max_batch: int = 8
    min_batch: int = 1
    block_size: int = 16
    num_blocks: int = 64
    max_request_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    degrade_after_misses: int = 2
    recover_after_steps: int = 8
    shed_queue_fraction: float = 0.5
    retry_after: float = 0.5

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be positive")
        if not 1 <= self.min_batch <= self.max_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        if self.max_request_retries < 0:
            raise ValueError("max_request_retries must be non-negative")
        if not 0.0 <= self.shed_queue_fraction <= 1.0:
            raise ValueError("shed_queue_fraction must be in [0, 1]")


class _Tracked:
    """Scheduler-internal state of one live request."""

    def __init__(self, handle: RequestHandle, order: int) -> None:
        self.handle = handle
        self.order = order
        self.rng: Optional[np.random.Generator] = None
        if handle.request.temperature > 0.0:
            self.rng = np.random.default_rng(handle.request.seed)
        self.position = 0  # worker-cached length once prefetched
        self.in_cache = False
        self.retries = 0

    @property
    def request(self) -> GenerationRequest:
        """The underlying immutable request."""
        return self.handle.request

    @property
    def seq_id(self) -> str:
        """Worker-side sequence id (the request id)."""
        return self.handle.request_id

    def rank(self) -> tuple[int, int]:
        """Sort key: higher wins scheduling, loses eviction."""
        return (self.request.priority, -self.order)


class ContinuousBatchScheduler:
    """Serve generation requests over one supervised paged-KV worker."""

    def __init__(
        self,
        model,
        config: Optional[ServeConfig] = None,
        worker_factory: Optional[Callable[[], object]] = None,
        clock=None,
        journal: Optional[RunJournal] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else WallClock()
        self.journal = journal if journal is not None else RunJournal()
        self._model = model
        if worker_factory is None:
            cfg = self.config

            def worker_factory() -> InProcessWorker:
                return InProcessWorker(
                    model,
                    block_size=cfg.block_size,
                    num_blocks=cfg.num_blocks,
                )

        self.supervisor = WorkerSupervisor(
            worker_factory,
            journal=self.journal,
            clock=self.clock,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
        )
        self._queue: list[_Tracked] = []
        self._active: list[_Tracked] = []
        self._order = 0
        self._steps = 0
        self._clean_steps = 0
        self._deadline_misses = 0
        self._closed = False
        self.effective_max_batch = self.config.max_batch

    # -- introspection ----------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether any request is queued or in flight."""
        return bool(self._queue or self._active)

    @property
    def queue_depth(self) -> int:
        """Requests waiting for admission to the batch."""
        return len(self._queue)

    @property
    def active_count(self) -> int:
        """Requests currently decoding (including awaiting replay)."""
        return len(self._active)

    # -- submission --------------------------------------------------------
    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        seed: int = 0,
        priority: int = 0,
        deadline: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> RequestHandle:
        """Queue one generation request; fails fast when overloaded.

        ``deadline`` is *relative* seconds from now.  Raises
        :class:`AdmissionError` (with ``retry_after``) on a full queue and
        ``ValueError`` for requests that could never be served (context
        window or KV pool too small).
        """
        if self._closed:
            raise ServeError("scheduler is closed")
        now = self.clock.now()
        if request_id is None:
            request_id = f"req-{self._order}"
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        total = prompt.size + max_new_tokens
        if total > self._model.config.max_seq_len:
            raise ValueError(
                f"request {request_id!r}: prompt plus continuation "
                f"({total} tokens) exceeds the context window"
            )
        pool_tokens = self.config.block_size * self.config.num_blocks
        if total > pool_tokens:
            raise ValueError(
                f"request {request_id!r}: {total} tokens can never fit the "
                f"KV pool ({pool_tokens} token slots)"
            )
        if len(self._queue) >= self.config.max_queue:
            self.journal.record(
                "reject",
                message=(
                    f"admission queue full "
                    f"({len(self._queue)}/{self.config.max_queue})"
                ),
                request_id=request_id,
                queue_depth=len(self._queue),
            )
            raise AdmissionError(
                f"admission queue full ({self.config.max_queue} waiting); "
                f"retry after {self.config.retry_after}s",
                retry_after=self.config.retry_after,
            )
        request = GenerationRequest(
            request_id=request_id,
            prompt=prompt,
            max_new_tokens=max_new_tokens,
            temperature=temperature,
            seed=seed,
            priority=priority,
            deadline=None if deadline is None else now + deadline,
        )
        handle = RequestHandle(request)
        handle.submitted_at = now
        tracked = _Tracked(handle, self._order)
        self._order += 1
        self._queue.append(tracked)
        self.journal.record(
            "admit",
            message=f"queued (depth {len(self._queue)})",
            request_id=request_id,
            queue_depth=len(self._queue),
            priority=priority,
        )
        return handle

    # -- lifecycle helpers -------------------------------------------------
    def _fail(
        self, tracked: _Tracked, error: BaseException, category: str
    ) -> None:
        """Move a request to a failed terminal state and free its cache."""
        if tracked in self._queue:
            self._queue.remove(tracked)
        if tracked in self._active:
            self._active.remove(tracked)
            if tracked.in_cache:
                self.supervisor.release(tracked.seq_id)
        now = self.clock.now()
        tracked.handle._finish("failed", now, error)
        self.journal.record(
            category,
            message=str(error),
            request_id=tracked.seq_id,
            error=type(error).__name__,
        )

    def _complete(self, tracked: _Tracked) -> None:
        """Move a request to the completed terminal state."""
        self._active.remove(tracked)
        if tracked.in_cache:
            self.supervisor.release(tracked.seq_id)
        now = self.clock.now()
        tracked.handle._finish("completed", now)
        self.journal.record(
            "complete",
            message=(
                f"{len(tracked.handle.tokens)} tokens in "
                f"{tracked.handle.latency:.3f}s"
            ),
            request_id=tracked.seq_id,
            tokens=len(tracked.handle.tokens),
            latency=round(tracked.handle.latency, 6),
        )

    def _sample(self, tracked: _Tracked, row: np.ndarray) -> int:
        """Sample the next token exactly as ``generate_cached`` would."""
        request = tracked.request
        if request.temperature <= 0.0:
            return int(np.argmax(row))
        probs = F.softmax(row / request.temperature)
        return int(tracked.rng.choice(probs.size, p=probs))

    def _reap_finished(self) -> None:
        """Fail cancelled and deadline-expired requests (queued or active)."""
        now = self.clock.now()
        for tracked in list(self._queue) + list(self._active):
            if tracked.handle.cancel_requested:
                self._fail(
                    tracked,
                    RequestCancelled(
                        f"request {tracked.seq_id!r} cancelled by caller"
                    ),
                    "cancel",
                )
            elif (
                tracked.request.deadline is not None
                and now > tracked.request.deadline
            ):
                self._deadline_misses += 1
                self._clean_steps = 0
                self._fail(
                    tracked,
                    DeadlineExceeded(
                        f"request {tracked.seq_id!r} missed its deadline "
                        f"(now {now:.3f}s > {tracked.request.deadline:.3f}s)"
                    ),
                    "deadline",
                )

    def _overload_control(self) -> None:
        """Shrink the batch and shed work under pressure; recover when calm."""
        cfg = self.config
        if (
            self._deadline_misses >= cfg.degrade_after_misses
            and self.effective_max_batch > cfg.min_batch
        ):
            self.effective_max_batch = max(
                cfg.min_batch, self.effective_max_batch // 2
            )
            self._deadline_misses = 0
            self.journal.record(
                "degrade",
                message=(
                    "deadline misses: effective batch shrunk to "
                    f"{self.effective_max_batch}"
                ),
                effective_max_batch=self.effective_max_batch,
            )
            keep = int(cfg.max_queue * cfg.shed_queue_fraction)
            while len(self._queue) > keep:
                victim = min(self._queue, key=_Tracked.rank)
                self._fail(
                    victim,
                    RequestShed(
                        f"request {victim.seq_id!r} shed under overload; "
                        f"retry after {cfg.retry_after}s",
                        retry_after=cfg.retry_after,
                    ),
                    "shed",
                )
        elif (
            self._clean_steps >= cfg.recover_after_steps
            and self.effective_max_batch < cfg.max_batch
        ):
            self.effective_max_batch += 1
            self._clean_steps = 0
            self.journal.record(
                "recover",
                message=(
                    "sustained clean steps: effective batch grown to "
                    f"{self.effective_max_batch}"
                ),
                effective_max_batch=self.effective_max_batch,
            )

    def _preempt_victim(self, beneficiary: _Tracked) -> bool:
        """Evict the worst strictly-lower-ranked cached sequence.

        Returns False when no sequence outranked by ``beneficiary`` holds
        cache — the beneficiary must then wait instead of starving others.
        """
        candidates = [
            t
            for t in self._active
            if t.in_cache and t is not beneficiary
            and t.rank() < beneficiary.rank()
        ]
        if not candidates:
            return False
        victim = min(candidates, key=_Tracked.rank)
        self.supervisor.release(victim.seq_id)
        victim.in_cache = False
        self.journal.record(
            "preempt",
            message=(
                f"evicted for {beneficiary.seq_id!r}; will replay from "
                f"token {len(victim.handle.tokens)}"
            ),
            request_id=victim.seq_id,
            beneficiary=beneficiary.seq_id,
        )
        return True

    def _on_worker_loss(self, in_flight: list[_Tracked]) -> None:
        """Handle a crashed/stalled worker: requeue everything for replay."""
        for tracked in self._active:
            tracked.in_cache = False
        for tracked in list(in_flight):
            tracked.retries += 1
            if tracked.retries > self.config.max_request_retries:
                self._fail(
                    tracked,
                    WorkerFailure(
                        f"request {tracked.seq_id!r} exhausted its replay "
                        f"budget ({self.config.max_request_retries} retries)"
                    ),
                    "failed",
                )

    def _prefill_sequence(
        self, tracked: _Tracked, tokens: np.ndarray
    ) -> Optional[np.ndarray]:
        """Prefill with preemption-on-exhaustion; None when pool is tight."""
        while True:
            try:
                return self.supervisor.prefill(tracked.seq_id, tokens)
            except CacheExhausted:
                if not self._preempt_victim(tracked):
                    return None

    # -- the engine loop ---------------------------------------------------
    async def step(self) -> bool:
        """Advance the system by at most one batched decode step.

        Returns True when any state changed (admissions, tokens, terminal
        transitions); False when there was nothing to do.
        """
        await asyncio.sleep(0)  # let handle consumers drain streams
        if self._closed:
            return False
        before = (
            self._order,
            len(self._queue),
            len(self._active),
            self._steps,
        )
        self._reap_finished()
        self._overload_control()
        worked = self._admit_and_rebuild()
        worked = self._decode_once() or worked
        self._reap_finished()
        after = (
            self._order,
            len(self._queue),
            len(self._active),
            self._steps,
        )
        return worked or before != after

    def _admit_and_rebuild(self) -> bool:
        """Admit queued requests and replay evicted/crashed sequences."""
        worked = False
        # Replay first: evicted sequences already hold tokens and would
        # otherwise starve behind a deep admission queue.
        rebuilds = sorted(
            (t for t in self._active if not t.in_cache),
            key=_Tracked.rank,
            reverse=True,
        )
        for tracked in rebuilds:
            prior = np.concatenate(
                [tracked.request.prompt, tracked.handle.tokens[:-1]]
            ).astype(np.int64)
            try:
                logits = self._prefill_sequence(tracked, prior)
            except (WorkerCrashed, WorkerStalled):
                self._on_worker_loss([tracked])
                return True
            if logits is None:
                continue  # pool tight; wait for completions
            # The last logits row re-derives the already-sampled token;
            # discard it — replay resumes at the decode step.
            tracked.in_cache = True
            tracked.position = prior.size
            tracked.handle.state = "running"
            self.journal.record(
                "rebuild",
                message=(
                    f"replayed {prior.size} tokens onto fresh cache "
                    f"(attempt {tracked.retries})"
                ),
                request_id=tracked.seq_id,
                replayed_tokens=int(prior.size),
            )
            worked = True
        while self._queue and len(self._active) < self.effective_max_batch:
            tracked = max(self._queue, key=_Tracked.rank)
            self._queue.remove(tracked)
            self._active.append(tracked)
            try:
                logits = self._prefill_sequence(
                    tracked, tracked.request.prompt
                )
            except (WorkerCrashed, WorkerStalled):
                # Not admitted after all: back to the queue's front rank.
                self._active.remove(tracked)
                self._queue.insert(0, tracked)
                self._on_worker_loss([tracked])
                return True
            if logits is None:
                self._active.remove(tracked)
                self._queue.insert(0, tracked)
                break
            tracked.in_cache = True
            tracked.position = tracked.request.prompt.size
            tracked.handle.state = "running"
            self.journal.record(
                "prefill",
                message=f"prefilled {tracked.request.prompt.size} tokens",
                request_id=tracked.seq_id,
                prompt_tokens=int(tracked.request.prompt.size),
            )
            token = self._sample(tracked, logits)
            tracked.handle._push_token(token)
            if len(tracked.handle.tokens) >= tracked.request.max_new_tokens:
                self._complete(tracked)
            worked = True
        return worked

    def _decode_once(self) -> bool:
        """Run one batched ragged decode step over cached sequences."""
        batch = [t for t in self._active if t.in_cache]
        batch = sorted(batch, key=_Tracked.rank, reverse=True)
        batch = batch[: self.effective_max_batch]
        if not batch:
            return False
        entries = [
            (t.seq_id, t.handle.tokens[-1], t.position) for t in batch
        ]
        try:
            logits, delay = self.supervisor.decode(entries)
        except CacheExhausted:
            if not self._preempt_victim(batch[0]):
                # Sole sequence cannot exhaust a pool it passed admission
                # for unless config shrank; evict it for replay later.
                self.supervisor.release(batch[-1].seq_id)
                batch[-1].in_cache = False
            return True
        except (WorkerCrashed, WorkerStalled):
            self._on_worker_loss(batch)
            return True
        self._steps += 1
        self._clean_steps += 1
        if delay > 0:
            self.clock.advance(delay)
            self.journal.record(
                "slow-step",
                message=f"decode step delayed {delay:.3f}s (injected)",
                delay=delay,
            )
        for row, tracked in enumerate(batch):
            token = self._sample(tracked, logits[row])
            tracked.position += 1
            tracked.handle._push_token(token)
            if len(tracked.handle.tokens) >= tracked.request.max_new_tokens:
                self._complete(tracked)
        return True

    # -- driving -----------------------------------------------------------
    async def run_until_idle(self, max_steps: int = 100000) -> int:
        """Step until no request is queued or in flight; returns steps run.

        ``max_steps`` is a livelock backstop: exceeding it raises
        :class:`ServeError` rather than spinning forever.
        """
        steps = 0
        while self.busy:
            await self.step()
            steps += 1
            if steps > max_steps:
                raise ServeError(
                    f"scheduler failed to drain within {max_steps} steps"
                )
        return steps

    def close(self) -> None:
        """Fail all outstanding requests and shut the worker down."""
        if self._closed:
            return
        for tracked in list(self._queue) + list(self._active):
            self._fail(
                tracked,
                ServeError(
                    f"request {tracked.seq_id!r} aborted: scheduler closed"
                ),
                "aborted",
            )
        self.supervisor.close()
        self._closed = True
