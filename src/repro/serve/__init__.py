"""Fault-tolerant quantized inference serving.

Continuous batching over a paged KV cache
(:class:`~repro.serve.paged_cache.PagedKVCache` lifts the equal-length
restriction of :meth:`~repro.nn.transformer.LlamaModel.generate_batch`),
driven by a :class:`~repro.serve.scheduler.ContinuousBatchScheduler` that
enforces per-request deadlines, bounded admission with explicit
backpressure, graceful degradation under overload, and deterministic
replay of in-flight requests after worker crashes detected by the
:class:`~repro.serve.supervisor.WorkerSupervisor`.  See
``docs/SERVING.md`` for the design and the chaos-test contract.
"""

from repro.serve.engine import ForkedEngineWorker, InProcessWorker
from repro.serve.loadgen import LoadResult, build_workload, run_open_loop
from repro.serve.paged_cache import PagedKVCache, RaggedView
from repro.serve.scheduler import ContinuousBatchScheduler, ServeConfig
from repro.serve.session import (
    GenerationRequest,
    ManualClock,
    RequestHandle,
    WallClock,
)
from repro.serve.supervisor import WorkerSupervisor

__all__ = [
    "ContinuousBatchScheduler",
    "ServeConfig",
    "PagedKVCache",
    "RaggedView",
    "GenerationRequest",
    "RequestHandle",
    "ManualClock",
    "WallClock",
    "InProcessWorker",
    "ForkedEngineWorker",
    "WorkerSupervisor",
    "LoadResult",
    "build_workload",
    "run_open_loop",
]
