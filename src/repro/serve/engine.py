"""Decode workers: the compute half of the serving layer.

A worker owns a model plus a :class:`~repro.serve.paged_cache.PagedKVCache`
and exposes four operations — ``prefill``, ``decode``, ``release``,
``stats`` — all returning plain values (logits arrays, dicts), never
mutating scheduler state.  Sampling deliberately does *not* happen here:
workers return logits and the scheduler samples, so all random state
survives a worker crash and replay is deterministic.

Two implementations share that surface:

* :class:`InProcessWorker` runs in the scheduler's process.  It wires the
  serving fault sites (``"worker-crash"``, ``"worker-stall"``,
  ``"slow-decode-step"`` — see :mod:`repro.runtime.faults`) so the chaos
  suite can kill, hang or slow it at exact, seeded points.  A crash or
  stall poisons the worker: the cache is treated as lost and every further
  call fails, exactly like a dead process.
* :class:`ForkedEngineWorker` hosts an :class:`InProcessWorker` inside a
  forked child via :class:`~repro.runtime.parallel.ForkedWorker`; a
  genuine process death surfaces as
  :class:`~repro.runtime.errors.WorkerCrashed` and a hang past the call
  timeout as :class:`~repro.runtime.errors.WorkerStalled`.

The supervisor (:mod:`repro.serve.supervisor`) treats both identically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.runtime import faults
from repro.runtime.errors import WorkerCrashed, WorkerStalled
from repro.runtime.parallel import ForkedWorker
from repro.serve.paged_cache import PagedKVCache

__all__ = ["ForkedEngineWorker", "InProcessWorker"]


class InProcessWorker:
    """Model + paged KV cache living in the caller's process.

    ``decode(entries)`` takes ``(seq_id, token, position)`` triples — one
    per running sequence — reserves every needed KV block *before* any
    compute (so :class:`~repro.runtime.errors.CacheExhausted` can never
    leave a half-written step), then runs one batched ragged decode step.
    It returns ``(logits, injected_delay)``; the delay is the value read
    from the ``"slow-decode-step"`` fault site, which the scheduler applies
    to its own clock.
    """

    def __init__(
        self, model, block_size: int = 16, num_blocks: int = 64
    ) -> None:
        self._model = model
        self._cache = PagedKVCache(
            n_layers=len(model.blocks),
            block_size=block_size,
            num_blocks=num_blocks,
        )
        self._steps = 0
        self._alive = True

    # -- liveness ---------------------------------------------------------
    def alive(self) -> bool:
        """Whether the worker can still serve calls."""
        return self._alive

    def _guard(self) -> None:
        """Reject calls on a poisoned worker (simulated dead process)."""
        if not self._alive:
            raise WorkerCrashed("worker is dead (previous crash or stall)")

    def _fault_gate(self, key: str) -> None:
        """Fire crash/stall fault sites; a hit poisons the worker."""
        try:
            faults.maybe_fault("worker-crash", key)
            faults.maybe_fault("worker-stall", key)
        except (WorkerCrashed, WorkerStalled):
            self._alive = False
            raise

    # -- operations -------------------------------------------------------
    def prefill(self, seq_id: str, tokens: np.ndarray) -> np.ndarray:
        """Prefill a new sequence; returns next-token logits ``(vocab,)``.

        All-or-nothing: on any failure the sequence's blocks are freed, so
        a retried prefill starts from a clean cache.
        """
        self._guard()
        self._fault_gate(f"prefill:{seq_id}")
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        self._cache.allocate(seq_id)
        try:
            self._cache.reserve(seq_id, tokens.size)
            views = [
                self._cache.layer_view(seq_id, layer)
                for layer in range(self._cache.n_layers)
            ]
            logits = self._model.prefill(tokens[None, :], views)
        except BaseException:
            self._cache.free(seq_id)
            raise
        return logits[0]

    def decode(
        self, entries: list[tuple[str, int, int]]
    ) -> tuple[np.ndarray, float]:
        """One batched ragged decode step over running sequences.

        ``entries`` rows are ``(seq_id, last_token, position)`` where
        ``position`` is the sequence's current cached length.  Returns
        ``(logits, injected_delay)`` with logits ``(batch, vocab)``.
        """
        self._guard()
        self._steps += 1
        key = f"decode:{self._steps}"
        self._fault_gate(key)
        delay = faults.fault_value("slow-decode-step", key)
        seq_ids = [seq_id for seq_id, _, _ in entries]
        # Reserve first: exhaustion must surface before any KV write.
        for seq_id, _, position in entries:
            self._cache.reserve(seq_id, position + 1)
        ids = np.asarray([token for _, token, _ in entries], dtype=np.int64)
        positions = np.asarray(
            [position for _, _, position in entries], dtype=np.int64
        )
        logits = self._model.decode_step_ragged(
            ids, positions, self._cache.ragged_view(seq_ids)
        )
        return logits, delay

    def release(self, seq_id: str) -> int:
        """Free a finished/evicted sequence; returns blocks reclaimed."""
        return self._cache.free(seq_id)

    def stats(self) -> dict:
        """Pool occupancy for admission control."""
        return {
            "free_blocks": self._cache.free_blocks,
            "used_blocks": self._cache.used_blocks,
            "block_size": self._cache.block_size,
            "num_blocks": self._cache.num_blocks,
            "sequences": len(self._cache.seq_ids()),
            "decode_steps": self._steps,
        }

    def close(self) -> None:
        """Drop all cache state and refuse further calls."""
        self._cache.free_all()
        self._alive = False


def _engine_handler(worker: InProcessWorker):
    """Child-side dispatch loop body for :class:`ForkedEngineWorker`."""

    def handle(message):
        """Dispatch one ``(op, *args)`` message to the worker."""
        op = message[0]
        if op == "prefill":
            return worker.prefill(message[1], message[2])
        if op == "decode":
            return worker.decode(message[1])
        if op == "release":
            return worker.release(message[1])
        if op == "stats":
            return worker.stats()
        raise ValueError(f"unknown engine op {op!r}")

    return handle


class ForkedEngineWorker:
    """An :class:`InProcessWorker` isolated in a forked child process.

    The model and KV cache live only in the child (inherited by fork, so
    nothing large crosses the pipe); calls ship ``(op, args...)`` tuples
    and small arrays.  ``timeout`` bounds every call — a child that blows
    past it is reported as :class:`~repro.runtime.errors.WorkerStalled`
    and must be discarded, since the pipe may hold a late reply.
    """

    def __init__(
        self,
        model,
        block_size: int = 16,
        num_blocks: int = 64,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self._timeout = timeout
        inner = InProcessWorker(
            model, block_size=block_size, num_blocks=num_blocks
        )
        self._worker = ForkedWorker(
            _engine_handler(inner), name="serve-engine"
        )

    def alive(self) -> bool:
        """Whether the child process is still running."""
        return self._worker.alive()

    def prefill(self, seq_id: str, tokens: np.ndarray) -> np.ndarray:
        """Remote :meth:`InProcessWorker.prefill`."""
        return self._worker.call(
            ("prefill", seq_id, np.asarray(tokens)), timeout=self._timeout
        )

    def decode(
        self, entries: list[tuple[str, int, int]]
    ) -> tuple[np.ndarray, float]:
        """Remote :meth:`InProcessWorker.decode`."""
        return self._worker.call(("decode", entries), timeout=self._timeout)

    def release(self, seq_id: str) -> int:
        """Remote :meth:`InProcessWorker.release`."""
        return self._worker.call(("release", seq_id), timeout=self._timeout)

    def stats(self) -> dict:
        """Remote :meth:`InProcessWorker.stats`."""
        return self._worker.call(("stats",), timeout=self._timeout)

    def kill(self) -> None:
        """Hard-kill the child (crash simulation for integration tests)."""
        self._worker.kill()

    def close(self) -> None:
        """Shut the child down cleanly."""
        self._worker.close()
