"""Worker supervision: crash/stall detection and backoff restarts.

The scheduler never talks to a worker directly; every operation goes
through a :class:`WorkerSupervisor`, which owns the worker's lifecycle.
When a call raises :class:`~repro.runtime.errors.WorkerCrashed` or
:class:`~repro.runtime.errors.WorkerStalled` the supervisor journals the
failure, discards the worker (a stalled worker's pipe may hold a late
reply, so it is never reused), waits out an exponential backoff on the
injected clock, builds a fresh worker from the factory, and re-raises the
typed error so the scheduler can requeue the in-flight sequences for
deterministic replay.

Consecutive failures double the backoff (capped); any successful call
resets the streak.  Both timing and restart count are observable through
the run journal, which the chaos suite asserts against.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.runtime.errors import WorkerCrashed, WorkerStalled
from repro.runtime.journal import RunJournal
from repro.serve.session import WallClock

__all__ = ["WorkerSupervisor"]


class WorkerSupervisor:
    """Owns the decode worker; restarts it with exponential backoff."""

    def __init__(
        self,
        factory: Callable[[], object],
        journal: Optional[RunJournal] = None,
        clock=None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        if backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        self._factory = factory
        self._journal = journal if journal is not None else RunJournal()
        self._clock = clock if clock is not None else WallClock()
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._worker = factory()
        self._failure_streak = 0
        self.restarts = 0

    @property
    def worker(self) -> object:
        """The live worker (tests only; production goes through ops)."""
        return self._worker

    # -- supervised operations -------------------------------------------
    def prefill(self, seq_id: str, tokens: np.ndarray) -> np.ndarray:
        """Supervised worker ``prefill``."""
        return self._call("prefill", lambda w: w.prefill(seq_id, tokens))

    def decode(
        self, entries: list[tuple[str, int, int]]
    ) -> tuple[np.ndarray, float]:
        """Supervised worker ``decode``."""
        return self._call("decode", lambda w: w.decode(entries))

    def release(self, seq_id: str) -> int:
        """Free a sequence; tolerates a dead worker (cache died with it)."""
        try:
            return self._worker.release(seq_id)
        except (WorkerCrashed, WorkerStalled):
            return 0

    def stats(self) -> dict:
        """Supervised worker ``stats``."""
        return self._call("stats", lambda w: w.stats())

    def close(self) -> None:
        """Shut the current worker down."""
        closer = getattr(self._worker, "close", None)
        if closer is not None:
            closer()

    # -- failure handling -------------------------------------------------
    def _call(self, op: str, thunk: Callable[[object], object]):
        """Run one worker operation, restarting on crash/stall."""
        try:
            result = thunk(self._worker)
        except WorkerCrashed as err:
            self._handle_failure("worker-crash", op, err)
            raise
        except WorkerStalled as err:
            self._handle_failure("worker-stall", op, err)
            raise
        self._failure_streak = 0
        return result

    def _handle_failure(
        self, category: str, op: str, err: BaseException
    ) -> None:
        """Journal the failure and bring up a replacement worker."""
        self._failure_streak += 1
        backoff = min(
            self._backoff_base * (2 ** (self._failure_streak - 1)),
            self._backoff_cap,
        )
        self._journal.record(
            category,
            message=f"worker {op} failed: {err}",
            op=op,
            streak=self._failure_streak,
        )
        self.close()
        self._clock.advance(backoff)
        self._worker = self._factory()
        self.restarts += 1
        self._journal.record(
            "worker-restart",
            message=(
                f"worker restarted after {category} "
                f"(backoff {backoff:.3f}s, restart #{self.restarts})"
            ),
            backoff=backoff,
            restarts=self.restarts,
        )
