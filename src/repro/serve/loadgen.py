"""Seeded open-loop load generation for the serving layer.

:func:`build_workload` derives a reproducible request stream (Poisson
arrivals, ragged prompt/budget lengths, mixed priorities) from a single
seed; :func:`run_open_loop` replays it against a scheduler — *open loop*:
arrivals fire at their precomputed times whether or not earlier requests
finished, which is what actually drives a bounded admission queue into
backpressure.  The ``"admission-burst"`` fault site
(:func:`repro.runtime.faults.fault_value`, keys ``"arrival:<i>"``) lets
the chaos suite clone an arrival into a burst of simultaneous submissions.

Every request ends in exactly one bucket of the returned
:class:`LoadResult` — completed, failed (typed error after admission) or
rejected (typed error at submission) — so "no request is ever lost or
hung" is checkable by arithmetic.  The result also derives the latency
percentiles and throughput reported into ``BENCH_serve.json``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.runtime.errors import AdmissionError, ServeError
from repro.runtime.faults import fault_value
from repro.serve.session import ManualClock

__all__ = ["LoadResult", "build_workload", "run_open_loop"]


@dataclasses.dataclass
class LoadResult:
    """Outcome of one load run, bucketed per request."""

    completed: dict
    failed: dict
    rejected: dict
    latencies: dict
    duration: float

    @property
    def total(self) -> int:
        """Requests submitted (including rejected ones)."""
        return len(self.completed) + len(self.failed) + len(self.rejected)

    @property
    def generated_tokens(self) -> int:
        """Tokens generated across completed requests (excl. prompts)."""
        return sum(
            int(seq.size) for seq in self.completed.values()
        ) - sum(
            int(p) for p in self._prompt_sizes.values()
        )

    @property
    def throughput(self) -> float:
        """Completed requests per second of run duration."""
        if self.duration <= 0:
            return 0.0
        return len(self.completed) / self.duration

    _prompt_sizes: dict = dataclasses.field(default_factory=dict)

    def percentile(self, q: float) -> float:
        """Latency percentile (seconds) over completed requests."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(list(self.latencies.values())), q))

    @property
    def p50(self) -> float:
        """Median completion latency (seconds)."""
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        """99th-percentile completion latency (seconds)."""
        return self.percentile(99.0)


def build_workload(
    n_requests: int,
    vocab_size: int,
    seed: int = 0,
    min_prompt: int = 2,
    max_prompt: int = 12,
    min_new: int = 2,
    max_new: int = 10,
    arrival_rate: float = 4.0,
    priorities: tuple[int, ...] = (0, 0, 1, 2),
    deadline: Optional[float] = None,
) -> list[dict]:
    """A seeded, sorted request stream for :func:`run_open_loop`.

    Arrivals are Poisson at ``arrival_rate`` requests per (virtual)
    second; prompts and budgets are uniform in their ranges; priorities
    cycle through the seeded choice of ``priorities``.  ``deadline`` is a
    relative per-request deadline applied uniformly (None disables).
    """
    if n_requests < 1:
        raise ValueError("n_requests must be positive")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, size=n_requests)
    arrivals = np.cumsum(gaps)
    workload = []
    for index in range(n_requests):
        prompt_len = int(rng.integers(min_prompt, max_prompt + 1))
        workload.append(
            {
                "request_id": f"load-{index}",
                "prompt": rng.integers(0, vocab_size, size=prompt_len),
                "max_new_tokens": int(rng.integers(min_new, max_new + 1)),
                "arrival": float(arrivals[index]),
                "priority": int(priorities[index % len(priorities)]),
                "deadline": deadline,
            }
        )
    return workload


async def run_open_loop(
    scheduler,
    workload: list[dict],
    step_cost: float = 0.0,
) -> LoadResult:
    """Replay ``workload`` against ``scheduler``; bucket every outcome.

    Arrivals are submitted when the scheduler's clock passes their
    timestamp.  With a :class:`~repro.serve.session.ManualClock`,
    ``step_cost`` advances virtual time per engine step, making the whole
    run deterministic; with a wall clock leave it at 0.  The
    ``"admission-burst"`` fault site may multiply any arrival into extra
    simultaneous clones (ids suffixed ``.burst<n>``).
    """
    clock = scheduler.clock
    manual = isinstance(clock, ManualClock)
    pending = sorted(workload, key=lambda spec: spec["arrival"])
    handles = {}
    rejected = {}
    start = clock.now()

    def _submit(spec: dict, request_id: str) -> None:
        try:
            handles[request_id] = scheduler.submit(
                spec["prompt"],
                max_new_tokens=spec["max_new_tokens"],
                priority=spec.get("priority", 0),
                deadline=spec.get("deadline"),
                temperature=spec.get("temperature", 0.0),
                seed=spec.get("seed", 0),
                request_id=request_id,
            )
        except AdmissionError as err:
            rejected[request_id] = err

    arrival_index = 0
    while pending or scheduler.busy:
        now = clock.now()
        while pending and pending[0]["arrival"] <= now - start:
            spec = pending.pop(0)
            _submit(spec, spec["request_id"])
            burst = int(fault_value("admission-burst", f"arrival:{arrival_index}"))
            for clone in range(burst):
                clone_spec = dict(spec)
                _submit(clone_spec, f"{spec['request_id']}.burst{clone}")
            arrival_index += 1
        await scheduler.step()
        if manual and (scheduler.busy or pending):
            clock.advance(
                step_cost if step_cost > 0 else _next_gap(pending, now, start)
            )

    completed = {}
    failed = {}
    latencies = {}
    prompt_sizes = {}
    for request_id, handle in handles.items():
        try:
            completed[request_id] = await handle.result()
            latencies[request_id] = handle.latency
            prompt_sizes[request_id] = int(handle.request.prompt.size)
        except ServeError as err:
            failed[request_id] = err
    result = LoadResult(
        completed=completed,
        failed=failed,
        rejected=rejected,
        latencies=latencies,
        duration=max(clock.now() - start, 1e-9),
    )
    result._prompt_sizes = prompt_sizes
    return result


def _next_gap(pending: list[dict], now: float, start: float) -> float:
    """Virtual seconds to advance when the engine had nothing timed to do."""
    if not pending:
        return 0.001
    return max(pending[0]["arrival"] - (now - start), 0.001)
