"""Multi-head self-attention with rotary position embeddings.

The projection submodules are named ``q_proj``/``k_proj``/``v_proj``/``o_proj``
to match the paper's layer naming ("self_attn.k_proj" in Algorithm 1).

Two forward paths exist:

* :meth:`MultiHeadAttention.forward` — autograd path (training, QAT, and
  the independent verification of the analytic APTQ derivatives);
* :meth:`MultiHeadAttention.forward_array` — fast numpy inference path that
  can additionally *capture* every intermediate the APTQ Hessian
  construction needs (Q, K, V, pre-softmax scores N, attention probs P,
  concatenated head outputs C — cf. paper Eqs. (9)-(15)).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.autograd import Tensor, ops
from repro.nn import functional as F
from repro.nn.modules import Linear, Module

__all__ = [
    "RotaryEmbedding",
    "AttentionCapture",
    "MultiHeadAttention",
    "KVCache",
]


class RotaryEmbedding:
    """Precomputed cos/sin tables for rotary position embeddings."""

    def __init__(self, d_head: int, max_seq_len: int, base: float = 10000.0):
        self.d_head = d_head
        self.max_seq_len = max_seq_len
        self.base = base
        self.cos, self.sin = F.rope_tables(max_seq_len, d_head, base)

    def tables(self, seq_len: int) -> tuple[np.ndarray, np.ndarray]:
        """Cos/sin tables truncated to ``seq_len`` positions."""
        if seq_len > self.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds table size {self.max_seq_len}"
            )
        return self.cos[:seq_len], self.sin[:seq_len]


@dataclasses.dataclass
class AttentionCapture:
    """Intermediates of one attention forward pass (numpy arrays).

    Shapes use ``b`` batch, ``h`` heads, ``s`` sequence, ``d`` head dim and
    ``D = h*d`` model dim.  These are exactly the quantities appearing in the
    paper's derivative formulas:

    - ``x``: layer input after RMSNorm, (b, s, D) — the paper's Q=K=V inputs.
    - ``q``/``k``: rotated per-head projections, (b, h, s, d).
    - ``v``: per-head value projections, (b, h, s, d).
    - ``scores``: pre-softmax logits N_h = Q W^Q (W^K)^T K^T / sqrt(d), (b, h, s, s).
    - ``probs``: softmax(scores) = P_h, (b, h, s, s).
    - ``heads``: concatenated head outputs Concat(head_1..head_H), (b, s, D).
    - ``output``: attention block output F = heads @ W^O, (b, s, D).
    """

    x: np.ndarray
    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    scores: np.ndarray
    probs: np.ndarray
    heads: np.ndarray
    output: np.ndarray


class MultiHeadAttention(Module):
    """Causal multi-head self-attention (the paper's MultiHead(Q, K, V))."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        max_seq_len: int,
        rope_base: float = 10000.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        rng = rng or np.random.default_rng(0)
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.o_proj = Linear(d_model, d_model, rng=rng)
        self.rope = RotaryEmbedding(self.d_head, max_seq_len, rope_base)

    # ------------------------------------------------------------------
    # Autograd path
    # ------------------------------------------------------------------
    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        x = ops.reshape(x, (batch, seq, self.n_heads, self.d_head))
        return ops.transpose(x, (0, 2, 1, 3))

    def _merge_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        x = ops.transpose(x, (0, 2, 1, 3))
        return ops.reshape(x, (batch, seq, self.d_model))

    def _rope_tensor(self, x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
        half = self.d_head // 2
        rotated = ops.concat(
            [ops.neg(x[..., half:]), x[..., :half]], axis=-1
        )
        return ops.add(
            ops.mul(x, Tensor(cos)), ops.mul(rotated, Tensor(sin))
        )

    def forward(self, x: Tensor) -> Tensor:
        """Causal self-attention over ``x`` (autograd path)."""
        batch, seq, _ = x.shape
        cos, sin = self.rope.tables(seq)
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)
        q = self._rope_tensor(q, cos, sin)
        k = self._rope_tensor(k, cos, sin)
        scale = 1.0 / np.sqrt(self.d_head)
        scores = ops.matmul(q, ops.swapaxes(k, -1, -2)) * scale
        scores = ops.add(scores, Tensor(F.causal_mask(seq)))
        probs = ops.softmax(scores, axis=-1)
        context = ops.matmul(probs, v)
        merged = self._merge_heads(context, batch, seq)
        return self.o_proj(merged)

    # ------------------------------------------------------------------
    # Numpy inference path
    # ------------------------------------------------------------------
    def forward_array(
        self, x: np.ndarray, capture: bool = False
    ) -> np.ndarray | tuple[np.ndarray, AttentionCapture]:
        """Numpy attention; optionally captures per-head internals."""
        batch, seq, _ = x.shape
        cos, sin = self.rope.tables(seq)

        def split(a: np.ndarray) -> np.ndarray:
            return a.reshape(batch, seq, self.n_heads, self.d_head).transpose(
                0, 2, 1, 3
            )

        q = F.apply_rope(split(self.q_proj.forward_array(x)), cos, sin)
        k = F.apply_rope(split(self.k_proj.forward_array(x)), cos, sin)
        v = split(self.v_proj.forward_array(x))
        scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(self.d_head)
        scores = scores + F.causal_mask(seq)
        probs = F.softmax(scores, axis=-1)
        context = probs @ v
        heads = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        output = self.o_proj.forward_array(heads)
        if not capture:
            return output
        return output, AttentionCapture(
            x=x, q=q, k=k, v=v, scores=scores, probs=probs,
            heads=heads, output=output,
        )

    # ------------------------------------------------------------------
    # Incremental decoding with a KV cache
    # ------------------------------------------------------------------
    def forward_step(
        self,
        x: np.ndarray,
        cache: "KVCache",
        position: int,
    ) -> np.ndarray:
        """Attend one new token at ``position`` against the cached keys.

        ``x`` is (batch, 1, d_model); the cache is appended in place.
        Equivalent to the last row of :meth:`forward_array` over the full
        prefix, at O(prefix) instead of O(prefix²) cost.
        """
        batch = x.shape[0]
        cos, sin = self.rope.tables(position + 1)
        cos_t, sin_t = cos[position], sin[position]

        def split(a: np.ndarray) -> np.ndarray:
            return a.reshape(batch, 1, self.n_heads, self.d_head).transpose(
                0, 2, 1, 3
            )

        q = F.apply_rope(split(self.q_proj.forward_array(x)), cos_t, sin_t)
        k = F.apply_rope(split(self.k_proj.forward_array(x)), cos_t, sin_t)
        v = split(self.v_proj.forward_array(x))
        keys, values = cache.append(k, v)
        scores = q @ np.swapaxes(keys, -1, -2) / np.sqrt(self.d_head)
        probs = F.softmax(scores, axis=-1)
        context = probs @ values
        heads = context.transpose(0, 2, 1, 3).reshape(batch, 1, self.d_model)
        return self.o_proj.forward_array(heads)

    def forward_step_ragged(
        self,
        x: np.ndarray,
        positions: np.ndarray,
        append_kv,
    ) -> np.ndarray:
        """Attend one new token per row at *per-row* positions (ragged batch).

        Generalizes :meth:`forward_step` to rows of different lengths — the
        continuous-batching decode step, where each row belongs to a
        different request.  ``x`` is ``(batch, 1, d_model)``; ``positions``
        gives row ``b``'s absolute position; ``append_kv(row, k, v)`` stores
        the row's new key/value ``(1, h, 1, d)`` in that row's cache (a
        :class:`KVCache` or a paged block table) and returns the full
        cached ``(keys, values)`` of shape ``(1, h, len, d)``.

        Per row the arithmetic is exactly :meth:`forward_step` on a
        batch of one: projections, rope, and the output projection are
        row-independent, and each row's attention runs against its own
        gathered keys/values with the same shapes a dedicated
        :class:`KVCache` would serve.  ``tests/test_serve_paged_cache.py``
        pins bit-identity against serial :meth:`forward_step` decoding.
        """
        batch = x.shape[0]
        positions = np.asarray(positions, dtype=np.int64).reshape(-1)
        if positions.size != batch:
            raise ValueError("positions must provide one entry per row")
        cos, sin = self.rope.tables(int(positions.max()) + 1)
        # Per-row rope rows, broadcast over heads: (batch, 1, 1, d_head).
        cos_t = cos[positions][:, None, None, :]
        sin_t = sin[positions][:, None, None, :]

        def split(a: np.ndarray) -> np.ndarray:
            return a.reshape(batch, 1, self.n_heads, self.d_head).transpose(
                0, 2, 1, 3
            )

        q = F.apply_rope(split(self.q_proj.forward_array(x)), cos_t, sin_t)
        k = F.apply_rope(split(self.k_proj.forward_array(x)), cos_t, sin_t)
        v = split(self.v_proj.forward_array(x))
        heads = np.empty((batch, 1, self.d_model), dtype=x.dtype)
        for row in range(batch):
            keys, values = append_kv(row, k[row : row + 1], v[row : row + 1])
            scores = (
                q[row : row + 1]
                @ np.swapaxes(keys, -1, -2)
                / np.sqrt(self.d_head)
            )
            probs = F.softmax(scores, axis=-1)
            context = probs @ values
            heads[row] = context.transpose(0, 2, 1, 3).reshape(
                1, 1, self.d_model
            )
        return self.o_proj.forward_array(heads)

    def forward_prefill(self, x: np.ndarray, cache: "KVCache") -> np.ndarray:
        """Attend ``seq`` new tokens against the cache in one batched pass.

        ``x`` is (batch, seq, d_model); the new tokens occupy positions
        ``cache.length .. cache.length + seq - 1`` and the cache is appended
        in place.  On an empty cache this performs the same arithmetic as
        :meth:`forward_array` (identical rope rows, mask values, and
        reductions); a single prefill replaces ``seq`` successive
        :meth:`forward_step` calls with one batched attention, which is why
        :meth:`~repro.nn.transformer.LlamaModel.generate_cached` prompt
        processing is O(seq) matmul launches instead of O(seq²).
        """
        batch, seq, _ = x.shape
        start = cache.length
        total = start + seq
        cos, sin = self.rope.tables(total)
        cos_t, sin_t = cos[start:total], sin[start:total]

        def split(a: np.ndarray) -> np.ndarray:
            return a.reshape(batch, seq, self.n_heads, self.d_head).transpose(
                0, 2, 1, 3
            )

        q = F.apply_rope(split(self.q_proj.forward_array(x)), cos_t, sin_t)
        k = F.apply_rope(split(self.k_proj.forward_array(x)), cos_t, sin_t)
        v = split(self.v_proj.forward_array(x))
        keys, values = cache.append(k, v)
        scores = q @ np.swapaxes(keys, -1, -2) / np.sqrt(self.d_head)
        if seq > 1:
            # Offset causal mask: new token i (absolute position start + i)
            # attends to absolute positions <= start + i.  For start == 0
            # this is exactly ``F.causal_mask(seq)``.
            mask = np.zeros((seq, total))
            blocked = np.arange(total)[None, :] > (
                start + np.arange(seq)[:, None]
            )
            mask[blocked] = -np.inf
            scores = scores + mask
        probs = F.softmax(scores, axis=-1)
        context = probs @ values
        heads = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.o_proj.forward_array(heads)


class KVCache:
    """Preallocated key/value cache for one attention block.

    The pre-PR-5 cache re-concatenated the whole history on every appended
    token — O(n²) copying over a decode.  This cache owns one contiguous
    buffer per tensor and writes new keys/values into the next free slots:

    * ``capacity`` preallocates the buffer at first append (pass
      ``max_seq_len`` so a decode never reallocates);
    * with the default ``capacity=0`` the buffer grows by doubling, an
      amortised O(1) append;
    * :attr:`keys`/:attr:`values` are zero-copy views of the filled prefix —
      element-for-element the arrays concatenation would have produced.

    Buffer shape and dtype come from the first appended array, so the cache
    is agnostic to batch size, head count, and head dimension.
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._length = 0

    @property
    def length(self) -> int:
        """Number of cached positions."""
        return self._length

    @property
    def keys(self) -> Optional[np.ndarray]:
        """Read-only view of the cached keys, ``(b, h, length, d)``.

        ``None`` while empty.  The view is marked non-writable so callers
        cannot corrupt the cache through the alias; the backing buffer
        itself stays writable for :meth:`append`.
        """
        if self._keys is None:
            return None
        view = self._keys[:, :, : self._length]
        view.flags.writeable = False
        return view

    @property
    def values(self) -> Optional[np.ndarray]:
        """Read-only view of the cached values, ``(b, h, length, d)``.

        ``None`` while empty; non-writable like :attr:`keys`.
        """
        if self._values is None:
            return None
        view = self._values[:, :, : self._length]
        view.flags.writeable = False
        return view

    def _reserve(self, template: np.ndarray, needed: int) -> None:
        """Ensure the buffers hold at least ``needed`` positions."""
        if self._keys is not None and self._keys.shape[2] >= needed:
            return
        if self._keys is None:
            size = max(self.capacity, needed)
        else:
            size = max(2 * self._keys.shape[2], needed)
        batch, heads, _, d_head = template.shape
        keys = np.empty((batch, heads, size, d_head), dtype=template.dtype)
        values = np.empty_like(keys)
        if self._keys is not None:
            keys[:, :, : self._length] = self._keys[:, :, : self._length]
            values[:, :, : self._length] = self._values[:, :, : self._length]
        self._keys, self._values = keys, values

    def append(
        self, k: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append ``(b, h, t, d)`` keys/values; returns views of the caches."""
        k = np.asarray(k)
        v = np.asarray(v)
        new = self._length + k.shape[2]
        self._reserve(k, new)
        self._keys[:, :, self._length : new] = k
        self._values[:, :, self._length : new] = v
        self._length = new
        return self.keys, self.values
