"""Pure-numpy functional ops shared by inference paths and the quantizers.

These mirror the autograd ops in ``repro.autograd.ops`` but operate on raw
arrays; they are used where no gradients are needed (fast perplexity
evaluation, Hessian assembly, reference computations in tests).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "sigmoid",
    "silu",
    "rms_norm",
    "rotate_half",
    "apply_rope",
    "causal_mask",
    "gather_nll",
    "gather_nll_reference",
    "cross_entropy",
    "attention",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax (max-shifted)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function.

    The naive ``1/(1+exp(-x))`` overflows for large negative ``x``; the
    sign-split form only ever exponentiates ``-|x|``.
    """
    z = np.exp(-np.abs(x))
    return np.where(x >= 0.0, 1.0 / (1.0 + z), z / (1.0 + z))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU/Swish activation ``x * sigmoid(x)`` (the LLaMA MLP gate)."""
    return x * sigmoid(x)


def rms_norm(x: np.ndarray, gain: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer norm (the LLaMA normalisation)."""
    scale = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / scale * gain


def rotate_half(x: np.ndarray) -> np.ndarray:
    """Rotate pairs ``(x1, x2) -> (-x2, x1)`` along the last axis."""
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)


def rope_tables(
    seq_len: int, d_head: int, base: float = 10000.0
) -> tuple[np.ndarray, np.ndarray]:
    """Cos/sin tables of shape ``(seq_len, d_head)`` for rotary embeddings.

    Shapes:
        seq_len: T
        d_head: Dh
        base: scalar
        return: any
    """
    if d_head % 2 != 0:
        raise ValueError("d_head must be even for rotary embeddings")
    inv_freq = 1.0 / (base ** (np.arange(0, d_head, 2, dtype=np.float64) / d_head))
    positions = np.arange(seq_len, dtype=np.float64)
    angles = np.outer(positions, inv_freq)
    angles = np.concatenate([angles, angles], axis=-1)
    return np.cos(angles), np.sin(angles)


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Apply rotary position embedding to ``x`` shaped ``(..., seq, d_head)``."""
    return x * cos + rotate_half(x) * sin


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive mask: 0 on/below diagonal, ``-inf`` above.

    Shapes:
        seq_len: T
        return: (T, T) f64
    """
    mask = np.zeros((seq_len, seq_len))
    mask[np.triu_indices(seq_len, k=1)] = -np.inf
    return mask


def gather_nll(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-token negative log-likelihood, fused (no log-prob tensor).

    Computes ``logsumexp(logits) - logits[target]`` over the last axis
    without materialising the full ``(..., vocab)`` log-probability tensor
    that ``log_softmax``-then-gather would allocate.  Uses the same max
    shift and the same reduction order as :func:`log_softmax`, so the
    result is **bit-identical** to :func:`gather_nll_reference` (pinned by
    ``tests/test_eval_perplexity.py``): IEEE-754 rounding commutes with
    negation, hence ``-(shifted[t] - log_norm) == log_norm - shifted[t]``
    exactly.

    ``logits`` has shape ``(..., vocab)``; ``targets`` matches the leading
    shape with integer class ids; returns NLL in the leading shape.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    peak = logits.max(axis=-1, keepdims=True)
    target_logit = (
        np.take_along_axis(logits, targets[..., None], axis=-1)
        - peak
    )[..., 0]
    # One full-vocab temporary, reused in place for the exponentials.  The
    # argument IS max-shifted (``peak`` is the row max above); the shift
    # detector only sees inline ``x - x.max()`` forms, hence the waiver.
    buffer = logits - peak
    np.exp(buffer, out=buffer)  # lint: disable=numeric-raw-exp
    # The buffer holds exponentials: the sum is >= exp(0) = 1 by the shift.
    log_norm = np.log(buffer.sum(axis=-1))  # lint: disable=numeric-raw-log
    return log_norm - target_logit


def gather_nll_reference(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Unfused reference for :func:`gather_nll`: log-softmax, then gather.

    Materialises the full ``(..., vocab)`` log-probability tensor; kept as
    the differential-test oracle and the bench baseline.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    log_probs = log_softmax(logits, axis=-1)
    picked = np.take_along_axis(log_probs, targets[..., None], axis=-1)
    return -picked[..., 0]


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean negative log-likelihood of ``targets`` under ``logits``.

    ``logits`` has shape ``(..., vocab)``; ``targets`` matches the leading
    shape with integer class ids.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    flat = logits.reshape(-1, logits.shape[-1])
    return float(gather_nll(flat, targets.reshape(-1)).mean())


def attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Scaled dot-product attention over ``(..., seq, d_head)`` arrays."""
    d_head = q.shape[-1]
    scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(d_head)
    if mask is not None:
        scores = scores + mask
    return softmax(scores, axis=-1) @ v
