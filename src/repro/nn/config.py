"""Model configuration for the LLaMA-style stand-in models."""

from __future__ import annotations

import dataclasses
import hashlib
import json

__all__ = ["LlamaConfig"]


@dataclasses.dataclass(frozen=True)
class LlamaConfig:
    """Hyper-parameters of a LLaMA-style causal language model.

    The defaults describe the smallest model the test-suite trains; the
    model zoo (``repro.models.configs``) defines the paper stand-ins
    ``llama-7b-sim`` and ``llama-13b-sim``.
    """

    vocab_size: int = 256
    d_model: int = 64
    n_layers: int = 4
    n_heads: int = 4
    d_ff: int = 176
    max_seq_len: int = 64
    rope_base: float = 10000.0
    rmsnorm_eps: float = 1e-5
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} not divisible by n_heads={self.n_heads}"
            )
        if self.d_head % 2 != 0:
            raise ValueError(
                f"head dimension {self.d_head} must be even for rotary embeddings"
            )
        for field in ("vocab_size", "d_model", "n_layers", "n_heads", "d_ff",
                      "max_seq_len"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    @property
    def d_head(self) -> int:
        """Per-head dimension ``d_model / n_heads`` (the paper's d_k)."""
        return self.d_model // self.n_heads

    def to_dict(self) -> dict:
        """Plain-dict form for serialization."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "LlamaConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(**payload)

    def cache_key(self) -> str:
        """Stable hash of the config, used to key the model-zoo cache."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def num_parameters(self) -> int:
        """Exact parameter count of a model built from this config."""
        attn = 4 * self.d_model * self.d_model
        mlp = 3 * self.d_model * self.d_ff
        norms = 2 * self.d_model
        per_layer = attn + mlp + norms
        embeddings = self.vocab_size * self.d_model
        head = 0 if self.tie_embeddings else self.vocab_size * self.d_model
        final_norm = self.d_model
        return self.n_layers * per_layer + embeddings + head + final_norm
