"""Transformer block and the LLaMA-style causal language model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor, ops
from repro.nn import functional as F
from repro.nn.attention import AttentionCapture, KVCache, MultiHeadAttention
from repro.nn.config import LlamaConfig
from repro.nn.modules import Embedding, Linear, Module, RMSNorm
from repro.runtime.errors import RaggedBatchError

__all__ = ["SwiGLU", "TransformerBlock", "LlamaModel"]


class SwiGLU(Module):
    """LLaMA feed-forward block ``down( silu(gate(x)) * up(x) )``."""

    def __init__(
        self, d_model: int, d_ff: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.gate_proj = Linear(d_model, d_ff, rng=rng)
        self.up_proj = Linear(d_model, d_ff, rng=rng)
        self.down_proj = Linear(d_ff, d_model, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Gated feed-forward transform (autograd path)."""
        gate = ops.silu(self.gate_proj(x))
        return self.down_proj(ops.mul(gate, self.up_proj(x)))

    def forward_array(self, x: np.ndarray) -> np.ndarray:
        """Gated feed-forward transform (numpy path)."""
        gate = F.silu(self.gate_proj.forward_array(x))
        return self.down_proj.forward_array(gate * self.up_proj.forward_array(x))


class TransformerBlock(Module):
    """Pre-norm block: attention and SwiGLU with residual connections."""

    def __init__(
        self, config: LlamaConfig, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_norm = RMSNorm(config.d_model, eps=config.rmsnorm_eps)
        self.self_attn = MultiHeadAttention(
            config.d_model,
            config.n_heads,
            config.max_seq_len,
            rope_base=config.rope_base,
            rng=rng,
        )
        self.post_attn_norm = RMSNorm(config.d_model, eps=config.rmsnorm_eps)
        self.mlp = SwiGLU(config.d_model, config.d_ff, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Attention + MLP with residuals (autograd path)."""
        x = ops.add(x, self.self_attn(self.input_norm(x)))
        return ops.add(x, self.mlp(self.post_attn_norm(x)))

    def forward_array(
        self, x: np.ndarray, capture: bool = False
    ) -> np.ndarray | tuple[np.ndarray, AttentionCapture]:
        """Attention + MLP with residuals (numpy path, optional capture)."""
        normed = self.input_norm.forward_array(x)
        if capture:
            attn_out, captured = self.self_attn.forward_array(normed, capture=True)
        else:
            attn_out = self.self_attn.forward_array(normed)
        x = x + attn_out
        x = x + self.mlp.forward_array(self.post_attn_norm.forward_array(x))
        if capture:
            return x, captured
        return x


class LlamaModel(Module):
    """Causal language model with tied (optional) output embeddings.

    Two execution paths: :meth:`forward` builds the autograd graph (used by
    the trainer and LLM-QAT); :meth:`forward_array` is a numpy fast path used
    by the evaluation harness and the calibration sweeps.
    """

    def __init__(self, config: LlamaConfig, seed: int = 0) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(seed)
        self.embed = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.blocks: list[TransformerBlock] = []
        for index in range(config.n_layers):
            block = TransformerBlock(config, rng=rng)
            self.register_module(f"blocks.{index}", block)
            self.blocks.append(block)
        self.final_norm = RMSNorm(config.d_model, eps=config.rmsnorm_eps)
        if config.tie_embeddings:
            self.lm_head: Optional[Linear] = None
        else:
            self.lm_head = Linear(config.d_model, config.vocab_size, rng=rng)

    # ------------------------------------------------------------------
    def forward(self, ids: np.ndarray) -> Tensor:
        """Return logits of shape ``(batch, seq, vocab)`` (autograd path)."""
        ids = np.atleast_2d(np.asarray(ids))
        x = self.embed(ids)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        if self.lm_head is not None:
            return self.lm_head(x)
        return ops.matmul(x, ops.transpose(self.embed.weight))

    def forward_array(self, ids: np.ndarray) -> np.ndarray:
        """Return logits of shape ``(batch, seq, vocab)`` (numpy path)."""
        ids = np.atleast_2d(np.asarray(ids))
        x = self.embed.weight.data[ids]
        for block in self.blocks:
            x = block.forward_array(x)
        x = self.final_norm.forward_array(x)
        if self.lm_head is not None:
            return self.lm_head.forward_array(x)
        return x @ self.embed.weight.data.T

    # ------------------------------------------------------------------
    def hidden_states(self, ids: np.ndarray) -> list[np.ndarray]:
        """Residual-stream input of every block plus the final state."""
        ids = np.atleast_2d(np.asarray(ids))
        x = self.embed.weight.data[ids]
        states = [x]
        for block in self.blocks:
            x = block.forward_array(x)
            states.append(x)
        return states

    def loss(self, ids: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean next-token cross-entropy (autograd scalar).

        Routed through the fused :func:`repro.autograd.ops.gather_nll`, so
        no ``(batch, seq, vocab)`` log-prob tensor is materialised; the
        value is bit-identical to the unfused log-softmax-then-gather form.
        """
        logits = self.forward(ids)
        targets = np.atleast_2d(np.asarray(targets))
        return ops.mean(ops.gather_nll(logits, targets))

    # ------------------------------------------------------------------
    # Incremental decoding
    # ------------------------------------------------------------------
    def new_cache(self) -> list[KVCache]:
        """One empty KV cache per block, preallocated to ``max_seq_len``."""
        return [KVCache(self.config.max_seq_len) for _ in self.blocks]

    def decode_step(
        self, ids: np.ndarray, caches: list[KVCache]
    ) -> np.ndarray:
        """Append one token per batch row; returns next-token logits.

        ``ids`` is (batch,) or (batch, 1).  Position is inferred from the
        cache length; feeding more than ``max_seq_len`` total tokens is
        rejected (sliding-window decoding requires a fresh cache).
        """
        ids = np.asarray(ids).reshape(-1, 1)
        position = caches[0].length
        if position >= self.config.max_seq_len:
            raise ValueError("KV cache is full (max_seq_len reached)")
        x = self.embed.weight.data[ids]
        for block, cache in zip(self.blocks, caches):
            normed = block.input_norm.forward_array(x)
            x = x + block.self_attn.forward_step(normed, cache, position)
            x = x + block.mlp.forward_array(
                block.post_attn_norm.forward_array(x)
            )
        x = self.final_norm.forward_array(x)
        if self.lm_head is not None:
            logits = self.lm_head.forward_array(x)
        else:
            logits = x @ self.embed.weight.data.T
        return logits[:, -1, :]

    def decode_step_ragged(
        self, ids: np.ndarray, positions: np.ndarray, kv_backend
    ) -> np.ndarray:
        """Append one token per row at *per-row* positions (ragged batch).

        The continuous-batching decode step: row ``b`` extends a sequence
        of length ``positions[b]`` (sequences of different lengths share
        one batched pass).  ``kv_backend`` abstracts the per-row KV
        storage with a single duck-typed method::

            append(layer, row, k, v) -> (keys, values)

        where ``k``/``v`` are the row's new key/value ``(1, h, 1, d)`` for
        ``layer`` and the returned arrays are the row's full cached
        ``(1, h, len, d)`` history (:class:`repro.serve.PagedKVCache`
        provides exactly this).  Returns next-token logits
        ``(batch, vocab)``.  Every layer is row-independent, so row ``b``
        is bit-identical to a dedicated :meth:`decode_step` on a batch of
        one — the property the serving layer's replay-after-crash
        determinism rests on.
        """
        ids = np.asarray(ids).reshape(-1, 1)
        positions = np.asarray(positions, dtype=np.int64).reshape(-1)
        if int(positions.max()) >= self.config.max_seq_len:
            raise ValueError("KV cache is full (max_seq_len reached)")
        x = self.embed.weight.data[ids]
        for index, block in enumerate(self.blocks):
            normed = block.input_norm.forward_array(x)

            def append(row, k, v, _layer=index):
                return kv_backend.append(_layer, row, k, v)

            x = x + block.self_attn.forward_step_ragged(
                normed, positions, append
            )
            x = x + block.mlp.forward_array(
                block.post_attn_norm.forward_array(x)
            )
        x = self.final_norm.forward_array(x)
        if self.lm_head is not None:
            logits = self.lm_head.forward_array(x)
        else:
            logits = x @ self.embed.weight.data.T
        return logits[:, -1, :]

    def prefill(
        self, ids: np.ndarray, caches: list[KVCache]
    ) -> np.ndarray:
        """Feed a ``(batch, seq)`` prompt through the caches in one pass.

        Returns next-token logits ``(batch, vocab)`` and leaves ``caches``
        holding the full prompt, exactly as ``seq`` successive
        :meth:`decode_step` calls would — but with one batched attention per
        block instead of ``seq`` single-token steps.  On fresh caches the
        arithmetic is identical to :meth:`forward_array`.
        """
        ids = np.atleast_2d(np.asarray(ids))
        if ids.shape[1] == 0:
            raise ValueError("prompt must contain at least one token")
        total = caches[0].length + ids.shape[1]
        if total > self.config.max_seq_len:
            raise ValueError("KV cache is full (max_seq_len reached)")
        x = self.embed.weight.data[ids]
        for block, cache in zip(self.blocks, caches):
            normed = block.input_norm.forward_array(x)
            x = x + block.self_attn.forward_prefill(normed, cache)
            x = x + block.mlp.forward_array(
                block.post_attn_norm.forward_array(x)
            )
        x = self.final_norm.forward_array(x)
        if self.lm_head is not None:
            logits = self.lm_head.forward_array(x)
        else:
            logits = x @ self.embed.weight.data.T
        return logits[:, -1, :]

    def generate_cached(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        temperature: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """KV-cached equivalent of :meth:`generate` (O(n) per token).

        Prompt + continuation must fit in ``config.max_seq_len``; use
        :meth:`generate` for sliding-window decoding beyond the context.
        """
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        rng = rng or np.random.default_rng(0)
        prompt = np.asarray(prompt).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if prompt.size + max_new_tokens > self.config.max_seq_len:
            raise ValueError(
                "prompt plus continuation exceeds the context window"
            )
        caches = self.new_cache()
        logits = self.prefill(prompt[None, :], caches)
        sequence = list(prompt)
        for _ in range(max_new_tokens):
            row = logits[0]
            if temperature <= 0.0:
                token = int(np.argmax(row))
            else:
                probs = F.softmax(row / temperature)
                token = int(rng.choice(probs.size, p=probs))
            sequence.append(token)
            logits = self.decode_step(np.array([token]), caches)
        return np.asarray(sequence, dtype=np.int64)

    def generate_batch(
        self,
        prompts: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        rngs: Optional[list[np.random.Generator]] = None,
    ) -> np.ndarray:
        """Decode a batch of equal-length prompts in one cached pass.

        ``prompts`` is ``(batch, prompt_len)``; returns
        ``(batch, prompt_len + max_new_tokens)``.  Row ``b`` matches
        ``generate_cached(prompts[b], ...)`` token for token (every layer is
        row-independent, so batching only amortises dispatch overhead).  With
        ``temperature > 0`` pass one generator per row via ``rngs``; the
        default decodes greedily.
        """
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        if isinstance(prompts, (list, tuple)):
            lengths = {len(np.asarray(p).reshape(-1)) for p in prompts}
            if len(lengths) > 1:
                raise RaggedBatchError(
                    "generate_batch requires equal-length prompts (got "
                    f"lengths {sorted(lengths)}); ragged batches are served "
                    "by the paged path — repro.serve.ContinuousBatchScheduler "
                    "over a PagedKVCache — or pad / call generate_cached "
                    "per prompt"
                )
        prompts = np.atleast_2d(np.asarray(prompts))
        batch, prompt_len = prompts.shape
        if prompt_len == 0:
            raise ValueError("prompts must contain at least one token")
        if prompt_len + max_new_tokens > self.config.max_seq_len:
            raise ValueError(
                "prompt plus continuation exceeds the context window"
            )
        if temperature > 0.0:
            if rngs is None or len(rngs) != batch:
                raise ValueError(
                    "sampling requires one rng per batch row"
                )
        caches = self.new_cache()
        logits = self.prefill(prompts, caches)
        sequences = [list(row) for row in prompts]
        for _ in range(max_new_tokens):
            tokens = np.empty(batch, dtype=np.int64)
            for row_index in range(batch):
                row = logits[row_index]
                if temperature <= 0.0:
                    tokens[row_index] = int(np.argmax(row))
                else:
                    probs = F.softmax(row / temperature)
                    tokens[row_index] = int(
                        rngs[row_index].choice(probs.size, p=probs)
                    )
                sequences[row_index].append(int(tokens[row_index]))
            logits = self.decode_step(tokens, caches)
        return np.asarray(sequences, dtype=np.int64)

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        temperature: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sample a continuation of ``prompt`` autoregressively.

        ``prompt`` is a 1-D token-id array; returns prompt + continuation.
        ``temperature=0`` decodes greedily.  The context window slides when
        the sequence exceeds ``config.max_seq_len``.
        """
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        rng = rng or np.random.default_rng(0)
        sequence = list(np.asarray(prompt).reshape(-1))
        if not sequence:
            raise ValueError("prompt must contain at least one token")
        for _ in range(max_new_tokens):
            window = np.asarray(sequence[-self.config.max_seq_len:])
            logits = self.forward_array(window[None, :])[0, -1]
            if temperature <= 0.0:
                token = int(np.argmax(logits))
            else:
                probs = F.softmax(logits / temperature)
                token = int(rng.choice(probs.size, p=probs))
            sequence.append(token)
        return np.asarray(sequence, dtype=np.int64)

    def quantizable_linears(self) -> dict[str, Linear]:
        """All weight matrices the paper quantizes, keyed by dotted name.

        Embeddings and norms stay full precision (as in GPTQ/APTQ); the
        seven matrices per block are q/k/v/o projections and the three
        SwiGLU projections.
        """
        layers: dict[str, Linear] = {}
        for index, block in enumerate(self.blocks):
            attn = block.self_attn
            layers[f"blocks.{index}.self_attn.q_proj"] = attn.q_proj
            layers[f"blocks.{index}.self_attn.k_proj"] = attn.k_proj
            layers[f"blocks.{index}.self_attn.v_proj"] = attn.v_proj
            layers[f"blocks.{index}.self_attn.o_proj"] = attn.o_proj
            layers[f"blocks.{index}.mlp.gate_proj"] = block.mlp.gate_proj
            layers[f"blocks.{index}.mlp.up_proj"] = block.mlp.up_proj
            layers[f"blocks.{index}.mlp.down_proj"] = block.mlp.down_proj
        if self.lm_head is not None:
            layers["lm_head"] = self.lm_head
        return layers
