"""Model checkpoint (de)serialisation as ``.npz`` archives with JSON config."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.config import LlamaConfig
from repro.nn.modules import Module

__all__ = ["save_state_dict", "load_state_dict"]

_CONFIG_KEY = "__config_json__"


def save_state_dict(path: str | Path, model: Module, config: LlamaConfig) -> None:
    """Write ``model``'s parameters and ``config`` to a single ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(model.state_dict())
    payload[_CONFIG_KEY] = np.frombuffer(
        json.dumps(config.to_dict()).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_state_dict(path: str | Path) -> tuple[dict[str, np.ndarray], LlamaConfig]:
    """Read a checkpoint, returning (state dict, config)."""
    path = Path(path)
    with np.load(path) as archive:
        raw = {key: archive[key] for key in archive.files}
    config_bytes = raw.pop(_CONFIG_KEY).tobytes()
    config = LlamaConfig.from_dict(json.loads(config_bytes.decode()))
    return raw, config
