"""Model checkpoint (de)serialisation as ``.npz`` archives with JSON config.

Writes go through :mod:`repro.runtime.checkpoint`, so a checkpoint on disk
is always either the complete old file or the complete new file (tmp-file +
``os.replace``), never a torn one, and always carries a SHA-256 sidecar
that loads verify against.  Unreadable or incomplete archives raise
:class:`~repro.runtime.errors.CheckpointError` instead of leaking raw
``KeyError``/``zipfile`` internals.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.nn.config import LlamaConfig
from repro.nn.modules import Module
from repro.runtime.checkpoint import atomic_save_npz, verify_checksum, write_checksum
from repro.runtime.errors import CheckpointError

__all__ = ["save_arrays", "load_arrays", "save_state_dict", "load_state_dict"]

_CONFIG_KEY = "__config_json__"
_META_KEY = "__meta_json__"


def _encode_config(config: LlamaConfig) -> np.ndarray:
    """``config`` as a JSON byte array embeddable in the ``.npz`` archive.

    ``json.dumps`` keeps its default ``ensure_ascii=True``, so the encoded
    record is pure 7-bit ASCII — the contract :func:`_decode_config`
    assumes when it decodes the bytes back.

    Bits:
        return: u8[0, 127]
    """
    return np.frombuffer(
        json.dumps(config.to_dict()).encode(), dtype=np.uint8
    )


def _decode_config(raw: np.ndarray) -> LlamaConfig:
    """Inverse of :func:`_encode_config`.

    Bits:
        raw: u8[0, 127]
        return: any
    """
    return LlamaConfig.from_dict(json.loads(raw.tobytes().decode()))


def save_arrays(
    path: str | Path, arrays: dict[str, np.ndarray], meta: dict | None = None
) -> Path:
    """Write named arrays plus a JSON header to a single ``.npz``.

    The generic sibling of :func:`save_state_dict` used by payload
    producers that are not plain state dicts (the quantization format
    registry's packed artifacts).  The write is atomic and leaves a
    SHA-256 sidecar; ``meta`` must be JSON-serialisable and is embedded
    under a reserved ``__meta_json__`` key.
    """
    payload = dict(arrays)
    if _META_KEY in payload:
        raise ValueError(f"array name {_META_KEY!r} is reserved for the header")
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta if meta is not None else {}).encode(), dtype=np.uint8
    )
    out = atomic_save_npz(path, payload)
    write_checksum(out)
    return out


def load_arrays(
    path: str | Path, verify: bool = True
) -> tuple[dict[str, np.ndarray], dict]:
    """Read an archive written by :func:`save_arrays` → (arrays, meta).

    Mirrors :func:`load_state_dict`'s failure taxonomy: checksum mismatch,
    unreadable archive, or a missing/corrupt header raise
    :class:`CheckpointError`; a missing file stays ``FileNotFoundError``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if verify:
        verify_checksum(path, required=False)
    try:
        with np.load(path) as archive:
            raw = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as error:
        raise CheckpointError(f"unreadable archive {path}: {error}") from error
    if _META_KEY not in raw:
        raise CheckpointError(
            f"archive {path} carries no {_META_KEY} entry; it was not "
            "written by save_arrays"
        )
    try:
        meta = json.loads(raw.pop(_META_KEY).tobytes().decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"archive {path} carries a corrupt header record: {error}"
        ) from error
    return raw, meta


def save_state_dict(path: str | Path, model: Module, config: LlamaConfig) -> None:
    """Write ``model``'s parameters and ``config`` to a single ``.npz``.

    The write is atomic (tmp file in the destination directory +
    ``os.replace``) and leaves a ``<path>.sha256`` sidecar; a crash
    mid-write can never produce a truncated archive that a later
    :func:`load_state_dict` (or ``repro.models.zoo.pretrained``) loads
    blindly.
    """
    payload = dict(model.state_dict())
    payload[_CONFIG_KEY] = _encode_config(config)
    atomic_save_npz(path, payload)
    write_checksum(path)


def load_state_dict(
    path: str | Path, verify: bool = True
) -> tuple[dict[str, np.ndarray], LlamaConfig]:
    """Read a checkpoint, returning (state dict, config).

    With ``verify=True`` the SHA-256 sidecar (when present) must match the
    archive.  Raises :class:`CheckpointError` for a corrupt or truncated
    archive, a checksum mismatch, or an archive without the
    ``__config_json__`` entry; a missing file stays ``FileNotFoundError``
    so "no checkpoint yet" remains distinguishable from "bad checkpoint".
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if verify:
        verify_checksum(path, required=False)
    try:
        with np.load(path) as archive:
            raw = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as error:
        raise CheckpointError(
            f"unreadable checkpoint {path}: {error}"
        ) from error
    if _CONFIG_KEY not in raw:
        raise CheckpointError(
            f"checkpoint {path} carries no {_CONFIG_KEY} entry; it was not "
            "written by save_state_dict"
        )
    try:
        config = _decode_config(raw.pop(_CONFIG_KEY))
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as error:
        raise CheckpointError(
            f"checkpoint {path} carries a corrupt config record: {error}"
        ) from error
    return raw, config
