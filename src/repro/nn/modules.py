"""Core neural-network modules: Module base class, Linear, Embedding, RMSNorm.

Conventions
-----------
Linear weights are stored in ``(d_in, d_out)`` layout so the forward pass is
``y = x @ W``.  The quantizers in ``repro.quant`` therefore operate on the
*rows* of ``W`` (the input dimension), which corresponds to the column-wise
sweep over ``(d_out, d_in)`` weights described in GPTQ/APTQ.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro.autograd import Tensor, ops

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "RMSNorm",
]


class Module:
    """Minimal module base with parameter/submodule discovery and hooks."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        # Input hooks receive the raw numpy input of each forward call; the
        # calibration machinery uses them to collect layer inputs.
        self.input_hooks: list[Callable[[np.ndarray], None]] = []

    # ------------------------------------------------------------------
    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        """Adopt ``tensor`` as a trainable parameter named ``name``."""
        tensor.requires_grad = True
        tensor.name = name
        self._parameters[name] = tensor
        return tensor

    def register_module(self, name: str, module: "Module") -> "Module":
        """Attach a child module under ``name`` for recursive traversal."""
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module) and name != "_modules":
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        """Yield every parameter tensor, depth first."""
        for _, parameter in self.named_parameters():
            yield parameter

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs including ``self``."""
        yield (prefix.rstrip("."), self)
        for module_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{module_name}.")

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            array = np.asarray(state[name], dtype=np.float64)
            if array.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{array.shape} != {parameter.data.shape}"
                )
            # Checkpoint loading replaces parameter payloads by design.
            parameter.data = array.copy()  # lint: disable=autograd-inplace-data

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        """Compute the module output (overridden by subclasses)."""
        raise NotImplementedError


class Linear(Module):
    """Bias-free linear layer ``y = x @ W`` with ``W`` of shape (d_in, d_out).

    LLaMA uses no biases anywhere, so neither do we; this also keeps the
    quantization problem exactly the one the paper formulates (weights only).
    """

    def __init__(
        self,
        d_in: int,
        d_out: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.d_in = d_in
        self.d_out = d_out
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / np.sqrt(d_in)
        weight = rng.normal(0.0, scale, size=(d_in, d_out))
        self.weight = self.register_parameter("weight", Tensor(weight))

    def forward(self, x: Tensor) -> Tensor:
        """Apply ``x @ W`` (autograd path), feeding any input hooks."""
        if self.input_hooks:
            for hook in self.input_hooks:
                hook(np.asarray(x.data))
        return ops.matmul(x, self.weight)

    def forward_array(self, x: np.ndarray) -> np.ndarray:
        """Gradient-free numpy forward, used on hot evaluation paths."""
        if self.input_hooks:
            for hook in self.input_hooks:
                hook(np.asarray(x))
        return x @ self.weight.data


class Embedding(Module):
    """Token embedding table with scatter-add backward."""

    def __init__(
        self,
        vocab_size: int,
        d_model: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.d_model = d_model
        rng = rng or np.random.default_rng(0)
        weight = rng.normal(0.0, 0.02, size=(vocab_size, d_model))
        self.weight = self.register_parameter("weight", Tensor(weight))

    def forward(self, ids: np.ndarray) -> Tensor:
        """Look up embedding rows for integer ``ids``."""
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise IndexError("token id out of range")
        return ops.embedding(self.weight, ids)


class RMSNorm(Module):
    """Root-mean-square normalisation with a learned gain vector."""

    def __init__(self, d_model: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gain = self.register_parameter("gain", Tensor(np.ones(d_model)))

    def forward(self, x: Tensor) -> Tensor:
        """Normalise ``x`` by its RMS and apply the gain (autograd path)."""
        mean_square = ops.mean(ops.mul(x, x), axis=-1, keepdims=True)
        scale = ops.power(mean_square + Tensor(self.eps), -0.5)
        return ops.mul(ops.mul(x, scale), self.gain)

    def forward_array(self, x: np.ndarray) -> np.ndarray:
        """Numpy fast path of :meth:`forward`."""
        from repro.nn import functional as F

        return F.rms_norm(x, self.gain.data, eps=self.eps)
