"""Numpy LLaMA-style transformer substrate.

Implements the model family the paper quantizes: RMSNorm, rotary position
embeddings, multi-head self-attention, SwiGLU feed-forward blocks and the
causal language model wrapper.  All modules run on :class:`repro.autograd.Tensor`
so the same code path serves training (model zoo, LLM-QAT) and inference
(perplexity / zero-shot evaluation).
"""

from repro.nn.config import LlamaConfig
from repro.nn.modules import Module, Linear, Embedding, RMSNorm
from repro.nn.attention import KVCache, MultiHeadAttention, RotaryEmbedding
from repro.nn.transformer import SwiGLU, TransformerBlock, LlamaModel
from repro.nn import functional
from repro.nn.serialize import save_state_dict, load_state_dict

__all__ = [
    "LlamaConfig",
    "Module",
    "Linear",
    "Embedding",
    "RMSNorm",
    "KVCache",
    "MultiHeadAttention",
    "RotaryEmbedding",
    "SwiGLU",
    "TransformerBlock",
    "LlamaModel",
    "functional",
    "save_state_dict",
    "load_state_dict",
]
