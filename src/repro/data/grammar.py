"""Seeded class-structured Markov grammars over integer word ids.

Each grammar mimics natural-language statistics at small scale: every word
belongs to a latent class (think part-of-speech), class sequences follow a
sparse order-2 Markov process with Zipfian branch probabilities, and each
class emits its member words with a Zipfian distribution.  The factored
structure — ``p(w_t | w_{t-2}, w_{t-1}) = p(c_t | c_{t-2}, c_{t-1}) ·
p(w_t | c_t)`` — is low-rank and therefore *learnable* by a tiny
transformer, unlike an unstructured random transition table which would
demand pure memorisation.

The grammars serve three roles:

1. training corpora for the stand-in models (:mod:`repro.data.corpus`);
2. ground-truth likelihoods for building multiple-choice distractors
   (:mod:`repro.data.tasks`);
3. a difficulty knob — distractors that follow low-probability class
   branches of the *same* grammar are much harder to reject than random
   words.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["MarkovGrammar"]


def _zipf(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


class MarkovGrammar:
    """Class-factored order-2 Markov word source."""

    def __init__(
        self,
        n_words: int,
        branching: int = 6,
        zipf_exponent: float = 1.0,
        smoothing: float = 1e-3,
        seed: int = 0,
        n_classes: int = 14,
        class_seed: int | None = None,
    ) -> None:
        if n_words < 4:
            raise ValueError("n_words must be at least 4")
        if not 2 <= n_classes <= n_words:
            raise ValueError("n_classes must be in [2, n_words]")
        if not 1 <= branching <= n_classes:
            raise ValueError("branching must be in [1, n_classes]")
        if not 0.0 < smoothing < 1.0:
            raise ValueError("smoothing must be in (0, 1)")
        self.n_words = int(n_words)
        self.n_classes = int(n_classes)
        self.branching = int(branching)
        self.zipf_exponent = float(zipf_exponent)
        self.smoothing = float(smoothing)
        self.seed = int(seed)
        # Domains of one synthetic "language" share the lexical structure
        # (word -> class map and emission ranks) by passing a common
        # class_seed, and differ only in their transition tables — the way
        # text domains share a grammar but differ in style.
        self.class_seed = int(seed if class_seed is None else class_seed)

        lex_rng = np.random.default_rng(self.class_seed)
        rng = np.random.default_rng(seed)
        # Word -> class assignment (each class non-empty by round-robin base).
        self.word_class = np.arange(self.n_words) % self.n_classes
        lex_rng.shuffle(self.word_class)
        # Per-class member lists and Zipfian emission probabilities.
        self.class_words: list[np.ndarray] = []
        self.class_emission: list[np.ndarray] = []
        self._emission_prob = np.zeros(self.n_words)
        for c in range(self.n_classes):
            members = np.nonzero(self.word_class == c)[0]
            order = lex_rng.permutation(members.size)
            members = members[order]
            probs = _zipf(members.size, zipf_exponent)
            self.class_words.append(members)
            self.class_emission.append(probs)
            self._emission_prob[members] = probs
        # Order-2 class transitions: for every (c1, c2) a sparse row of
        # ``branching`` successor classes with Zipfian probabilities.
        branch_probs = _zipf(self.branching, zipf_exponent)
        self._branch_probs = branch_probs
        self._branch_cumulative = np.cumsum(branch_probs)
        n_contexts = self.n_classes * self.n_classes
        self._successor_classes = np.empty(
            (n_contexts, self.branching), dtype=np.int64
        )
        for context_index in range(n_contexts):
            self._successor_classes[context_index] = rng.choice(
                self.n_classes, size=self.branching, replace=False
            )
        # Dense p(class | context) with smoothing folded in, for fast scoring.
        self._class_given_context = np.full(
            (n_contexts, self.n_classes), self.smoothing / self.n_classes
        )
        rows = np.repeat(np.arange(n_contexts), self.branching)
        cols = self._successor_classes.reshape(-1)
        np.add.at(
            self._class_given_context,
            (rows, cols),
            (1.0 - self.smoothing) * np.tile(branch_probs, n_contexts),
        )

    # ------------------------------------------------------------------
    def _context_index(self, context: tuple[int, int]) -> int:
        c1 = int(self.word_class[context[0]])
        c2 = int(self.word_class[context[1]])
        return c1 * self.n_classes + c2

    def successor_distribution(self, context: tuple[int, int]) -> np.ndarray:
        """Full smoothed distribution ``p(word | context)`` over the lexicon."""
        class_probs = self._class_given_context[self._context_index(context)]
        return class_probs[self.word_class] * self._emission_prob_normalised()

    def _emission_prob_normalised(self) -> np.ndarray:
        # p(w | c(w)) is already normalised within each class.
        return self._emission_prob

    def word_probability(self, context: tuple[int, int], word: int) -> float:
        """Smoothed ``p(word | context)``."""
        class_probs = self._class_given_context[self._context_index(context)]
        word_class = int(self.word_class[word])
        return float(class_probs[word_class] * self._emission_prob[word])

    # ------------------------------------------------------------------
    def _sample_word_from_class(self, c: int, u: float) -> int:
        probs = self.class_emission[c]
        cumulative = np.cumsum(probs)
        index = min(int(np.searchsorted(cumulative, u)), probs.size - 1)
        return int(self.class_words[c][index])

    def sample(
        self,
        n_tokens: int,
        rng: Optional[np.random.Generator] = None,
        start: Optional[tuple[int, int]] = None,
    ) -> np.ndarray:
        """Sample a word-id stream of length ``n_tokens``."""
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        rng = rng or np.random.default_rng(self.seed)
        if start is None:
            context = (
                int(rng.integers(self.n_words)),
                int(rng.integers(self.n_words)),
            )
        else:
            context = (int(start[0]), int(start[1]))
        out = np.empty(n_tokens, dtype=np.int64)
        branch_u = rng.random(n_tokens)
        emit_u = rng.random(n_tokens)
        smooth_u = rng.random(n_tokens)
        smooth_words = rng.integers(self.n_words, size=n_tokens)
        for index in range(n_tokens):
            if smooth_u[index] < self.smoothing:
                word = int(smooth_words[index])
            else:
                row = self._successor_classes[self._context_index(context)]
                branch = min(
                    int(np.searchsorted(self._branch_cumulative, branch_u[index])),
                    self.branching - 1,
                )
                word = self._sample_word_from_class(
                    int(row[branch]), emit_u[index]
                )
            out[index] = word
            context = (context[1], word)
        return out

    def continue_sequence(
        self,
        context_words: np.ndarray,
        length: int,
        rng: np.random.Generator,
        low_probability: bool = False,
    ) -> np.ndarray:
        """Sample a continuation after ``context_words``.

        With ``low_probability=True`` each step follows the grammar's least
        likely class branch and emits the least likely word of that class —
        lexically well-formed yet improbable, a hard distractor
        (cf. ARC-Challenge).
        """
        if len(context_words) < 2:
            raise ValueError("need at least 2 context words")
        context = (int(context_words[-2]), int(context_words[-1]))
        out = np.empty(length, dtype=np.int64)
        for index in range(length):
            row = self._successor_classes[self._context_index(context)]
            if low_probability:
                c = int(row[-1])  # Zipf rows are sorted most->least likely
                members = self.class_words[c]
                tail = members[members.size // 2 :]
                word = int(tail[rng.integers(tail.size)])
            else:
                branch = min(
                    int(np.searchsorted(self._branch_cumulative, rng.random())),
                    self.branching - 1,
                )
                word = self._sample_word_from_class(int(row[branch]), rng.random())
            out[index] = word
            context = (context[1], word)
        return out

    def corrupt_continuation(
        self,
        continuation: np.ndarray,
        rng: np.random.Generator,
        n_corruptions: int = 1,
    ) -> np.ndarray:
        """Replace ``n_corruptions`` positions with random lexicon words.

        The hardest distractor family: the sequence stays grammatical
        everywhere except the corrupted positions, so a model must assign
        sharp per-token probabilities to reject it.
        """
        continuation = np.asarray(continuation)
        if not 1 <= n_corruptions <= continuation.size:
            raise ValueError("n_corruptions out of range")
        corrupted = continuation.copy()
        positions = rng.choice(
            continuation.size, size=n_corruptions, replace=False
        )
        for position in positions:
            replacement = int(rng.integers(self.n_words))
            while replacement == int(corrupted[position]):
                replacement = int(rng.integers(self.n_words))
            corrupted[position] = replacement
        return corrupted

    def sequence_logprob(self, words: np.ndarray) -> float:
        """Sum of smoothed log transition probabilities along ``words``.

        The first two words are scored as uniform draws.
        """
        words = np.asarray(words)
        if words.size < 3:
            raise ValueError("need at least 3 words to score transitions")
        # n_words >= 4 and word_probability is floored by the smoothing mass
        # (smoothing / n_classes times a positive Zipf emission), so both
        # logs are positivity-safe by construction.
        total = -2.0 * np.log(self.n_words)  # lint: disable=numeric-raw-log
        for index in range(2, words.size):
            context = (int(words[index - 2]), int(words[index - 1]))
            prob = self.word_probability(context, int(words[index]))
            total += np.log(prob)  # lint: disable=numeric-raw-log
        return float(total)

    def entropy_rate(self) -> float:
        """Expected per-token entropy (nats): class branching + emission.

        A lower bound on any model's achievable cross-entropy on this
        grammar, useful for sanity-checking training.
        """
        # Zipf weights are strictly positive, so p * log(p) never hits 0*inf.
        class_entropy = float(
            -(
                self._branch_probs
                * np.log(self._branch_probs)  # lint: disable=numeric-raw-log
            ).sum()
        )
        emission_entropy = float(
            np.mean(
                [
                    -(p * np.log(p)).sum()  # lint: disable=numeric-raw-log
                    for p in self.class_emission
                ]
            )
        )
        return class_entropy + emission_entropy
