"""A small byte-pair-encoding tokenizer.

Included as a substrate: the real LLaMA pipeline is BPE-based, and having a
trainable BPE here lets downstream users reproduce the full text pipeline.
The headline experiments use the word-level tokenizer (the grammars define
probabilities at word granularity), but this implementation is complete and
tested: greedy merge training, encode with learned merge ranks, decode.
"""

from __future__ import annotations

import collections
from typing import Iterable

__all__ = ["BPETokenizer"]


class BPETokenizer:
    """Byte-pair encoding over characters with end-of-word markers."""

    EOW = "</w>"

    def __init__(self) -> None:
        self.merges: dict[tuple[str, str], int] = {}
        self.vocab: dict[str, int] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _word_symbols(word: str) -> tuple[str, ...]:
        return tuple(word) + (BPETokenizer.EOW,)

    def train(self, corpus: Iterable[str], num_merges: int = 200) -> None:
        """Learn ``num_merges`` merges from whitespace-tokenized ``corpus``."""
        if num_merges <= 0:
            raise ValueError("num_merges must be positive")
        word_counts: collections.Counter[tuple[str, ...]] = collections.Counter()
        for line in corpus:
            for word in line.split():
                word_counts[self._word_symbols(word)] += 1
        if not word_counts:
            raise ValueError("empty training corpus")

        self.merges = {}
        words = dict(word_counts)
        for rank in range(num_merges):
            pair_counts: collections.Counter[tuple[str, str]] = collections.Counter()
            for symbols, count in words.items():
                for left, right in zip(symbols, symbols[1:]):
                    pair_counts[(left, right)] += count
            if not pair_counts:
                break
            best, best_count = pair_counts.most_common(1)[0]
            if best_count < 2:
                break
            self.merges[best] = rank
            merged_symbol = best[0] + best[1]
            new_words: dict[tuple[str, ...], int] = {}
            for symbols, count in words.items():
                new_words[self._merge_once(symbols, best, merged_symbol)] = (
                    new_words.get(self._merge_once(symbols, best, merged_symbol), 0)
                    + count
                )
            words = new_words

        tokens: set[str] = set()
        for symbols in words:
            tokens.update(symbols)
        self.vocab = {token: i for i, token in enumerate(sorted(tokens))}

    @staticmethod
    def _merge_once(
        symbols: tuple[str, ...], pair: tuple[str, str], merged: str
    ) -> tuple[str, ...]:
        out: list[str] = []
        index = 0
        while index < len(symbols):
            if (
                index + 1 < len(symbols)
                and symbols[index] == pair[0]
                and symbols[index + 1] == pair[1]
            ):
                out.append(merged)
                index += 2
            else:
                out.append(symbols[index])
                index += 1
        return tuple(out)

    # ------------------------------------------------------------------
    def encode_word(self, word: str) -> list[str]:
        """Apply learned merges (lowest rank first) to one word."""
        if not self.merges:
            raise RuntimeError("tokenizer has not been trained")
        symbols = list(self._word_symbols(word))
        while len(symbols) > 1:
            ranked = [
                (self.merges[(a, b)], i)
                for i, (a, b) in enumerate(zip(symbols, symbols[1:]))
                if (a, b) in self.merges
            ]
            if not ranked:
                break
            _, index = min(ranked)
            symbols[index : index + 2] = [symbols[index] + symbols[index + 1]]
        return symbols

    def encode(self, text: str) -> list[str]:
        """Encode whitespace-separated text to subword tokens."""
        pieces: list[str] = []
        for word in text.split():
            pieces.extend(self.encode_word(word))
        return pieces

    def decode(self, tokens: Iterable[str]) -> str:
        """Reassemble subword tokens into whitespace-separated text."""
        text = "".join(tokens)
        return text.replace(self.EOW, " ").strip()
