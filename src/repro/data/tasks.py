"""Synthetic zero-shot multiple-choice suites.

Stand-ins for the five common-sense benchmarks of the paper's Table 2
(PIQA, HellaSwag, ARC-Easy, ARC-Challenge, WinoGrande).  Each example is a
grammar-sampled context plus one *grammatical* continuation and one or more
distractors; models are scored by length-normalised continuation
log-likelihood exactly like the EleutherAI harness scores real suites.

Difficulty is graded through two knobs, chosen per suite to produce an
accuracy spread similar in spirit to the real benchmarks:

* ``distractor``: ``"random"`` (uniform words — easy), ``"foreign"``
  (fluent text from a different grammar — medium), ``"low_prob"``
  (improbable branches of the *same* grammar — hard), ``"corrupt"``
  (a grammatical continuation with one position replaced — hardest, the
  model must resolve a single-token log-likelihood gap);
* number of choices and continuation length (shorter = less evidence).
"""

from __future__ import annotations

import dataclasses
from typing import Literal, Sequence

import numpy as np

from repro.data.corpus import SyntheticCorpus, c4_domains
from repro.data.grammar import MarkovGrammar
from repro.data.tokenizer import WordTokenizer

__all__ = [
    "MultipleChoiceExample",
    "TaskSuite",
    "build_task_suite",
    "standard_task_suites",
]

DistractorKind = Literal["random", "foreign", "low_prob", "corrupt"]


@dataclasses.dataclass
class MultipleChoiceExample:
    """One scored example: token-id context and candidate continuations."""

    context: np.ndarray
    choices: list[np.ndarray]
    answer: int

    def __post_init__(self) -> None:
        if not 0 <= self.answer < len(self.choices):
            raise ValueError("answer index out of range")
        if len(self.choices) < 2:
            raise ValueError("need at least two choices")


@dataclasses.dataclass
class TaskSuite:
    """A named list of examples (one synthetic benchmark)."""

    name: str
    examples: list[MultipleChoiceExample]

    def __len__(self) -> int:
        return len(self.examples)


def build_task_suite(
    name: str,
    grammar: MarkovGrammar,
    tokenizer: WordTokenizer,
    n_examples: int = 200,
    n_choices: int = 2,
    context_len: int = 24,
    continuation_len: int = 8,
    distractor: DistractorKind = "random",
    seed: int = 0,
    foreign_grammar: MarkovGrammar | None = None,
    n_corruptions: int = 1,
) -> TaskSuite:
    """Generate a suite of multiple-choice examples from ``grammar``."""
    if distractor == "foreign" and foreign_grammar is None:
        raise ValueError("foreign distractors need a foreign_grammar")
    rng = np.random.default_rng(seed)
    examples: list[MultipleChoiceExample] = []
    for _ in range(n_examples):
        context_words = grammar.sample(context_len, rng=rng)
        correct = grammar.continue_sequence(context_words, continuation_len, rng)
        choices_words: list[np.ndarray] = [correct]
        for _ in range(n_choices - 1):
            if distractor == "random":
                wrong = rng.integers(grammar.n_words, size=continuation_len)
            elif distractor == "foreign":
                wrong = foreign_grammar.continue_sequence(
                    context_words, continuation_len, rng
                )
            elif distractor == "corrupt":
                wrong = grammar.corrupt_continuation(
                    grammar.continue_sequence(
                        context_words, continuation_len, rng
                    ),
                    rng,
                    n_corruptions=n_corruptions,
                )
            else:  # low_prob
                wrong = grammar.continue_sequence(
                    context_words, continuation_len, rng, low_probability=True
                )
            choices_words.append(np.asarray(wrong, dtype=np.int64))
        order = rng.permutation(n_choices)
        answer = int(np.nonzero(order == 0)[0][0])
        examples.append(
            MultipleChoiceExample(
                context=tokenizer.word_ids_to_token_ids(context_words),
                choices=[
                    tokenizer.word_ids_to_token_ids(choices_words[i])
                    for i in order
                ],
                answer=answer,
            )
        )
    return TaskSuite(name=name, examples=examples)


def standard_task_suites(
    corpus: SyntheticCorpus,
    n_examples: int = 200,
    seed: int = 2024,
) -> list[TaskSuite]:
    """The five Table-2 suites, built over the corpus' dominant domains.

    Contexts come from the pretraining domains so the FP16 model is well
    above chance; suite parameters grade difficulty to spread accuracies
    the way the real benchmarks do (ARC-C hardest, PIQA/ARC-E easiest).
    """
    tokenizer = corpus.tokenizer
    domains = c4_domains(corpus.grammars[0].n_words)
    foreign = MarkovGrammar(
        corpus.grammars[0].n_words, branching=12, zipf_exponent=1.0, seed=909
    )
    # Difficulty tuned (against the llama-7b-sim stand-in) so FP16 accuracy
    # sits below saturation with clear headroom for quantization-induced
    # drops: ARC-Challenge hardest (~75%), ARC-Easy easiest (~99%).
    specs = [
        # name, grammar, choices, ctx, cont, distractor, corruptions
        ("piqa_sim", domains[0], 2, 24, 6, "corrupt", 1),
        ("hellaswag_sim", domains[1], 4, 32, 6, "foreign", 1),
        ("arc_easy_sim", domains[2], 4, 24, 8, "corrupt", 3),
        ("arc_challenge_sim", domains[2], 4, 24, 6, "corrupt", 1),
        ("winogrande_sim", domains[0], 2, 16, 4, "corrupt", 1),
    ]
    suites: list[TaskSuite] = []
    for index, (name, grammar, n_choices, ctx, cont, kind, nc) in enumerate(
        specs
    ):
        suites.append(
            build_task_suite(
                name,
                grammar,
                tokenizer,
                n_examples=n_examples,
                n_choices=n_choices,
                context_len=ctx,
                continuation_len=cont,
                distractor=kind,  # type: ignore[arg-type]
                seed=seed + index,
                foreign_grammar=foreign,
                n_corruptions=nc,
            )
        )
    return suites
