"""Synthetic corpora standing in for C4 and WikiText-2.

``c4-sim`` is a mixture over several Markov grammar "domains" (C4 is a
diverse web crawl); ``wikitext2-sim`` draws from a single domain that is a
member of the c4-sim mixture but mixed with an unseen domain (WikiText-2 is
narrower and distributionally shifted from C4).  Models are pretrained on
the c4-sim training split; calibration uses c4-sim, matching the paper's
protocol, which makes wikitext2-sim the "out-of-calibration-distribution"
evaluation exactly as in Table 1.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.data.grammar import MarkovGrammar
from repro.data.tokenizer import WordTokenizer, build_lexicon

__all__ = [
    "CorpusSplits",
    "SyntheticCorpus",
    "default_tokenizer",
    "c4_domains",
    "c4_sim",
    "wikitext2_sim",
]

DEFAULT_N_WORDS = 252  # + 4 specials = 256 vocab

# All domains of the synthetic language share one lexical class structure.
SHARED_CLASS_SEED = 7


@dataclasses.dataclass
class CorpusSplits:
    """Flat token-id streams for train/validation/test."""

    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray


class SyntheticCorpus:
    """A seeded mixture of Markov grammar domains rendered through a tokenizer."""

    def __init__(
        self,
        name: str,
        grammars: Sequence[MarkovGrammar],
        weights: Sequence[float],
        tokenizer: WordTokenizer,
        segment_len: int = 256,
        seed: int = 0,
    ) -> None:
        if len(grammars) != len(weights) or not grammars:
            raise ValueError("grammars and weights must be equal-length, non-empty")
        weights = np.asarray(weights, dtype=np.float64)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        self.name = name
        self.grammars = list(grammars)
        self.weights = weights / weights.sum()
        self.tokenizer = tokenizer
        self.segment_len = int(segment_len)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def sample_word_ids(self, n_tokens: int, rng: np.random.Generator) -> np.ndarray:
        """Sample a word-id stream by concatenating domain segments."""
        chunks: list[np.ndarray] = []
        total = 0
        while total < n_tokens:
            grammar = self.grammars[rng.choice(len(self.grammars), p=self.weights)]
            chunk = grammar.sample(self.segment_len, rng=rng)
            chunks.append(chunk)
            total += chunk.size
        return np.concatenate(chunks)[:n_tokens]

    def tokens(self, n_tokens: int, seed_offset: int = 0) -> np.ndarray:
        """Deterministic token-id stream of length ``n_tokens``."""
        rng = np.random.default_rng([self.seed, seed_offset])
        words = self.sample_word_ids(n_tokens, rng)
        return self.tokenizer.word_ids_to_token_ids(words)

    def text(self, n_tokens: int, seed_offset: int = 0) -> str:
        """Render a sample as whitespace-separated text."""
        return self.tokenizer.decode(self.tokens(n_tokens, seed_offset))

    def splits(
        self,
        train_tokens: int = 200_000,
        validation_tokens: int = 20_000,
        test_tokens: int = 20_000,
    ) -> CorpusSplits:
        """Disjointly seeded train/validation/test streams."""
        return CorpusSplits(
            train=self.tokens(train_tokens, seed_offset=1),
            validation=self.tokens(validation_tokens, seed_offset=2),
            test=self.tokens(test_tokens, seed_offset=3),
        )


def default_tokenizer(n_words: int = DEFAULT_N_WORDS, seed: int = 7) -> WordTokenizer:
    """The tokenizer shared by all standard corpora and tasks."""
    return WordTokenizer(build_lexicon(n_words, seed=seed))


def c4_domains(n_words: int = DEFAULT_N_WORDS) -> list[MarkovGrammar]:
    """The four web-like domains mixed into c4-sim."""
    return [
        MarkovGrammar(n_words, branching=5, zipf_exponent=1.2, seed=101,
                      class_seed=SHARED_CLASS_SEED),
        MarkovGrammar(n_words, branching=8, zipf_exponent=1.0, seed=202,
                      class_seed=SHARED_CLASS_SEED),
        MarkovGrammar(n_words, branching=4, zipf_exponent=1.4, seed=303,
                      class_seed=SHARED_CLASS_SEED),
        MarkovGrammar(n_words, branching=10, zipf_exponent=0.8, seed=404,
                      class_seed=SHARED_CLASS_SEED),
    ]


def c4_sim(
    tokenizer: WordTokenizer | None = None,
    n_words: int = DEFAULT_N_WORDS,
) -> SyntheticCorpus:
    """The diverse pretraining/calibration corpus (stands in for C4)."""
    tokenizer = tokenizer or default_tokenizer(n_words)
    return SyntheticCorpus(
        name="c4-sim",
        grammars=c4_domains(n_words),
        weights=[0.35, 0.3, 0.2, 0.15],
        tokenizer=tokenizer,
        seed=11,
    )


def wikitext2_sim(
    tokenizer: WordTokenizer | None = None,
    n_words: int = DEFAULT_N_WORDS,
) -> SyntheticCorpus:
    """The narrower, shifted evaluation corpus (stands in for WikiText-2).

    Dominated by one c4-sim domain plus a domain never seen in
    pretraining, so perplexities are systematically higher — mirroring the
    C4-calibrated / WikiText-2-evaluated gap in the paper's Table 1.
    """
    tokenizer = tokenizer or default_tokenizer(n_words)
    domains = c4_domains(n_words)
    unseen = MarkovGrammar(n_words, branching=10, zipf_exponent=1.1, seed=505,
                           class_seed=SHARED_CLASS_SEED)
    return SyntheticCorpus(
        name="wikitext2-sim",
        grammars=[domains[1], unseen],
        weights=[0.8, 0.2],
        tokenizer=tokenizer,
        seed=13,
    )
