"""Data substrate: synthetic corpora, tokenizers and zero-shot tasks.

The paper calibrates on C4 and evaluates on C4, WikiText-2 and five
zero-shot multiple-choice suites.  None of those datasets are available
offline, so this package provides seeded synthetic equivalents:

* :mod:`repro.data.grammar` — order-2 Markov "grammars" over a lexicon of
  pronounceable words; these give the stand-in models genuine predictive
  structure to learn (and quantization something to destroy).
* :mod:`repro.data.corpus` — the ``c4-sim`` multi-domain mixture and the
  narrower ``wikitext2-sim`` corpus, with train/validation/test splits.
* :mod:`repro.data.tokenizer` / :mod:`repro.data.bpe` — a word-level
  tokenizer (used by the experiments) and a byte-pair encoder substrate.
* :mod:`repro.data.calibration` — the 128-segment calibration sampler that
  mirrors the paper's protocol.
* :mod:`repro.data.tasks` — synthetic PIQA / HellaSwag / ARC-E / ARC-C /
  WinoGrande-style multiple-choice suites with graded difficulty.
"""

from repro.data.grammar import MarkovGrammar
from repro.data.tokenizer import WordTokenizer, build_lexicon
from repro.data.bpe import BPETokenizer
from repro.data.corpus import CorpusSplits, SyntheticCorpus, c4_sim, wikitext2_sim
from repro.data.calibration import CalibrationSet, sample_calibration
from repro.data.tasks import (
    MultipleChoiceExample,
    TaskSuite,
    build_task_suite,
    standard_task_suites,
)

__all__ = [
    "MarkovGrammar",
    "WordTokenizer",
    "build_lexicon",
    "BPETokenizer",
    "CorpusSplits",
    "SyntheticCorpus",
    "c4_sim",
    "wikitext2_sim",
    "CalibrationSet",
    "sample_calibration",
    "MultipleChoiceExample",
    "TaskSuite",
    "build_task_suite",
    "standard_task_suites",
]
