"""Calibration-set sampling, mirroring the paper's protocol.

The paper calibrates every PTQ method on "128 segments, each containing 2048
tokens randomly sampled from the C4 dataset".  We sample the same number of
segments from c4-sim, with the segment length scaled to the stand-in model's
context window.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.corpus import SyntheticCorpus
from repro.runtime.errors import CalibrationError

__all__ = ["CalibrationSet", "sample_calibration", "screen_finite"]


def screen_finite(batch: np.ndarray, context: str) -> None:
    """Reject NaN/Inf in a calibration array with an actionable error.

    ``context`` names the offending unit ("segment 3", "batch 1 entering
    layer ...") so the operator can locate the poisoned data; integer
    arrays pass trivially.
    """
    batch = np.asarray(batch)
    if not np.issubdtype(batch.dtype, np.floating):
        return
    finite = np.isfinite(batch)
    if not finite.all():
        bad = int(batch.size - int(finite.sum()))
        first = np.argwhere(~finite)[0]
        raise CalibrationError(
            f"{context} contains {bad} non-finite value(s) (first at index "
            f"{tuple(int(i) for i in first)}); screen the calibration data "
            "or regenerate the offending batch"
        )


@dataclasses.dataclass
class CalibrationSet:
    """A batch of calibration segments, shape ``(n_segments, seq_len)``."""

    segments: np.ndarray
    corpus_name: str
    seed: int

    def __post_init__(self) -> None:
        self.segments = np.asarray(self.segments)
        if self.segments.ndim != 2:
            raise ValueError("segments must be a 2-D (n, seq_len) array")
        for index, segment in enumerate(self.segments):
            screen_finite(segment, f"calibration segment {index}")

    @property
    def n_segments(self) -> int:
        """Number of calibration segments."""
        return self.segments.shape[0]

    @property
    def seq_len(self) -> int:
        """Token length of each segment."""
        return self.segments.shape[1]

    def batches(self, batch_size: int):
        """Yield the segments in contiguous mini-batches."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for start in range(0, self.n_segments, batch_size):
            yield self.segments[start : start + batch_size]


def sample_calibration(
    corpus: SyntheticCorpus,
    n_segments: int = 128,
    seq_len: int = 64,
    seed: int = 1234,
) -> CalibrationSet:
    """Draw ``n_segments`` random ``seq_len``-token windows from ``corpus``.

    Windows are cut from a fresh deterministic stream seeded independently of
    the train/validation/test splits, so calibration never sees evaluation
    tokens.
    """
    if n_segments <= 0 or seq_len <= 0:
        raise ValueError("n_segments and seq_len must be positive")
    rng = np.random.default_rng(seed)
    # Stream long enough to cut disjoint-ish random windows from.
    stream = corpus.tokens(max(n_segments * seq_len // 2, 8 * seq_len),
                           seed_offset=97)
    starts = rng.integers(0, stream.size - seq_len, size=n_segments)
    segments = np.stack([stream[s : s + seq_len] for s in starts])
    return CalibrationSet(segments=segments, corpus_name=corpus.name, seed=seed)
