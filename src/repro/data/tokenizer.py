"""Word-level tokenizer and the synthetic pronounceable lexicon.

The grammars emit integer word ids; :func:`build_lexicon` gives each id a
pronounceable surface form so the corpus pipeline is genuinely
text -> tokens -> ids, like the paper's pipeline, rather than id-passing.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["build_lexicon", "WordTokenizer"]

_ONSETS = ["b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z",
           "br", "dr", "gr", "kl", "pl", "st", "tr", "sk"]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "ou"]
_CODAS = ["", "n", "r", "s", "t", "l", "m", "nd", "st", "rk"]


def build_lexicon(n_words: int, seed: int = 0) -> list[str]:
    """Deterministically generate ``n_words`` distinct pronounceable words."""
    rng = np.random.default_rng(seed)
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < n_words:
        syllables = int(rng.integers(1, 4))
        parts = []
        for _ in range(syllables):
            parts.append(
                _ONSETS[rng.integers(len(_ONSETS))]
                + _NUCLEI[rng.integers(len(_NUCLEI))]
                + _CODAS[rng.integers(len(_CODAS))]
            )
        word = "".join(parts)
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


class WordTokenizer:
    """Whitespace tokenizer over a fixed lexicon with special tokens.

    Token id layout: ``[<pad>, <unk>, <bos>, <eos>] + lexicon``, so a word
    id ``w`` from a grammar maps to token id ``w + num_specials``.
    """

    PAD = "<pad>"
    UNK = "<unk>"
    BOS = "<bos>"
    EOS = "<eos>"
    SPECIALS = (PAD, UNK, BOS, EOS)

    def __init__(self, lexicon: Sequence[str]) -> None:
        if len(set(lexicon)) != len(lexicon):
            raise ValueError("lexicon contains duplicate words")
        overlap = set(lexicon) & set(self.SPECIALS)
        if overlap:
            raise ValueError(f"lexicon collides with special tokens: {overlap}")
        self.lexicon = list(lexicon)
        self._vocab = list(self.SPECIALS) + self.lexicon
        self._ids = {word: index for index, word in enumerate(self._vocab)}

    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        """Total vocabulary size including the special tokens."""
        return len(self._vocab)

    @property
    def num_specials(self) -> int:
        """Number of reserved special tokens."""
        return len(self.SPECIALS)

    @property
    def pad_id(self) -> int:
        """Token id of the padding symbol."""
        return self._ids[self.PAD]

    @property
    def unk_id(self) -> int:
        """Token id of the unknown-word symbol."""
        return self._ids[self.UNK]

    @property
    def bos_id(self) -> int:
        """Token id of the beginning-of-sequence symbol."""
        return self._ids[self.BOS]

    @property
    def eos_id(self) -> int:
        """Token id of the end-of-sequence symbol."""
        return self._ids[self.EOS]

    # ------------------------------------------------------------------
    def encode(self, text: str) -> np.ndarray:
        """Tokenize whitespace-separated ``text`` to an id array."""
        ids = [self._ids.get(word, self.unk_id) for word in text.split()]
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Iterable[int]) -> str:
        """Inverse of :meth:`encode` (specials rendered literally)."""
        return " ".join(self._vocab[int(i)] for i in ids)

    def word_ids_to_token_ids(self, word_ids: np.ndarray) -> np.ndarray:
        """Map grammar word ids to tokenizer ids (shift past specials)."""
        word_ids = np.asarray(word_ids)
        if word_ids.size and (
            word_ids.min() < 0 or word_ids.max() >= len(self.lexicon)
        ):
            raise IndexError("word id outside lexicon")
        return word_ids + self.num_specials

    def token_ids_to_word_ids(self, token_ids: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`word_ids_to_token_ids`; specials are rejected."""
        token_ids = np.asarray(token_ids)
        if token_ids.size and token_ids.min() < self.num_specials:
            raise ValueError("token stream contains special tokens")
        return token_ids - self.num_specials
