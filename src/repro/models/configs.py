"""Configurations of the paper's model stand-ins.

``llama-7b-sim`` and ``llama-13b-sim`` keep LLaMA-7B/13B's *relative*
proportions (13B is deeper and wider than 7B by roughly the same factors)
at a scale a CPU can train in seconds.  ``llama-test`` is a miniature used
by the test-suite.
"""

from __future__ import annotations

from repro.data.corpus import DEFAULT_N_WORDS
from repro.nn.config import LlamaConfig

__all__ = ["model_config"]

_VOCAB = DEFAULT_N_WORDS + 4  # lexicon + special tokens

MODEL_CONFIGS: dict[str, LlamaConfig] = {
    "llama-test": LlamaConfig(
        vocab_size=_VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=2,
        d_ff=88,
        max_seq_len=64,
    ),
    "llama-7b-sim": LlamaConfig(
        vocab_size=_VOCAB,
        d_model=64,
        n_layers=4,
        n_heads=4,
        d_ff=176,
        max_seq_len=64,
    ),
    "llama-13b-sim": LlamaConfig(
        vocab_size=_VOCAB,
        d_model=96,
        n_layers=6,
        n_heads=6,
        d_ff=264,
        max_seq_len=64,
    ),
}


def model_config(name: str) -> LlamaConfig:
    """Look up a named config, raising with the known names on miss."""
    try:
        return MODEL_CONFIGS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_CONFIGS))
        raise KeyError(f"unknown model {name!r}; known: {known}") from None
