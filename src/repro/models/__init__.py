"""Model zoo: pretrained tiny LLaMA stand-ins with on-disk caching."""

from repro.models.configs import MODEL_CONFIGS, model_config
from repro.models.zoo import clone_model, default_cache_dir, pretrained

__all__ = [
    "MODEL_CONFIGS",
    "model_config",
    "pretrained",
    "clone_model",
    "default_cache_dir",
]
