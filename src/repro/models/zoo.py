"""Train-and-cache pretrained stand-in models.

``pretrained(name)`` returns a trained :class:`LlamaModel`; the first call
trains it on the c4-sim corpus and caches the checkpoint under a key derived
from the config, trainer settings and corpus seeds, so every later call
(including across pytest sessions and benchmark runs) loads instantly and
identically.

Cache loads are checksum-verified: a truncated, bit-flipped, or otherwise
corrupt cache entry is detected, deleted, and transparently retrained
rather than crashing (or worse, silently serving garbage weights).
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Optional

from repro.data.corpus import c4_sim
from repro.models.configs import model_config
from repro.nn.config import LlamaConfig
from repro.nn.serialize import load_state_dict, save_state_dict
from repro.nn.transformer import LlamaModel
from repro.runtime.checkpoint import checksum_path
from repro.runtime.errors import CheckpointError
from repro.training.trainer import Trainer, TrainingConfig

__all__ = ["default_cache_dir", "pretrained", "clone_model"]

_TRAINING_PRESETS: dict[str, TrainingConfig] = {
    "llama-test": TrainingConfig(steps=1500, batch_size=16, seq_len=64, seed=0),
    "llama-7b-sim": TrainingConfig(steps=4000, batch_size=16, seq_len=64, seed=0),
    "llama-13b-sim": TrainingConfig(steps=4000, batch_size=16, seq_len=64, seed=0),
}
_TRAIN_TOKENS = 200_000
_CACHE_VERSION = "v1"


def default_cache_dir() -> Path:
    """Cache root; override with the ``REPRO_CACHE_DIR`` environment variable."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-aptq"


def _checkpoint_path(name: str, config: LlamaConfig, training: TrainingConfig) -> Path:
    key = (
        f"{name}-{_CACHE_VERSION}-{config.cache_key()}"
        f"-s{training.steps}b{training.batch_size}l{training.seq_len}"
        f"r{training.seed}"
    )
    return default_cache_dir() / "models" / f"{key}.npz"


def pretrained(
    name: str,
    cache: bool = True,
    training: Optional[TrainingConfig] = None,
) -> LlamaModel:
    """Return the named model trained on c4-sim (cached on disk)."""
    config = model_config(name)
    training = training or _TRAINING_PRESETS.get(name, TrainingConfig())
    path = _checkpoint_path(name, config, training)
    if cache and path.exists():
        try:
            state, stored_config = load_state_dict(path)
            model = LlamaModel(stored_config, seed=training.seed)
            model.load_state_dict(state)
            return model
        except (CheckpointError, KeyError, ValueError) as error:
            # Corrupt or stale cache entry: drop it and fall through to a
            # fresh training run that overwrites the cache.
            warnings.warn(
                f"discarding corrupt model cache {path}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            path.unlink(missing_ok=True)
            checksum_path(path).unlink(missing_ok=True)
    model = LlamaModel(config, seed=training.seed)
    corpus = c4_sim()
    tokens = corpus.splits(train_tokens=_TRAIN_TOKENS).train
    Trainer(model, training).fit(tokens)
    if cache:
        save_state_dict(path, model, config)
    return model


def clone_model(model: LlamaModel) -> LlamaModel:
    """Deep-copy a model (quantizers mutate weights in place)."""
    twin = LlamaModel(model.config, seed=0)
    twin.load_state_dict(model.state_dict())
    return twin
