"""APTQ reproduction: Attention-aware Post-Training Mixed-Precision Quantization.

Reproduces Guan et al., "APTQ: Attention-aware Post-Training Mixed-Precision
Quantization for Large Language Models" (DAC 2024) as a self-contained numpy
library: a LLaMA-style transformer substrate, an autograd engine for training
the stand-in models, the full quantizer family the paper compares against
(RTN, GPTQ, OBQ, SmoothQuant, OWQ, PB-LLM, FPQ, LLM-QAT), the APTQ core
(attention-aware Hessians + Hessian-trace mixed precision), and the
perplexity / zero-shot evaluation harness that regenerates every table and
figure of the paper's evaluation.
"""

__version__ = "1.0.0"
