"""First-order optimizers over :class:`repro.autograd.Tensor` parameters."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autograd import Tensor

__all__ = [
    "clip_grad_norm",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        factor = max_norm / total
        for p in params:
            p.grad *= factor
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: Sequence[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear the gradients of every managed parameter."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self.step_count += 1
        for index, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            self._update(index, p)

    def _update(self, index: int, parameter: Tensor) -> None:  # pragma: no cover
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, index: int, parameter: Tensor) -> None:
        if self.momentum:
            v = self._velocity[index]
            v *= self.momentum
            v += parameter.grad
            parameter.data -= self.lr * v
        else:
            parameter.data -= self.lr * parameter.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, index: int, parameter: Tensor) -> None:
        grad = parameter.grad
        m = self._m[index]
        v = self._v[index]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1**self.step_count)
        v_hat = v / (1.0 - self.beta2**self.step_count)
        parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr, betas=betas, eps=eps)
        self.weight_decay = weight_decay

    def _update(self, index: int, parameter: Tensor) -> None:
        if self.weight_decay:
            parameter.data -= self.lr * self.weight_decay * parameter.data
        super()._update(index, parameter)
