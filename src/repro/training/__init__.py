"""Training substrate: optimizers, LR schedules and a causal-LM trainer.

Used to (a) pretrain the tiny LLaMA stand-ins in :mod:`repro.models.zoo`
and (b) run the straight-through-estimator fine-tuning of the LLM-QAT
baseline (:mod:`repro.quant.llmqat`).
"""

from repro.training.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.training.schedule import (
    ConstantSchedule,
    CosineSchedule,
    WarmupSchedule,
)
from repro.training.trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "ConstantSchedule",
    "CosineSchedule",
    "WarmupSchedule",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
]
