"""Learning-rate schedules used by the trainer."""

from __future__ import annotations

import math

__all__ = [
    "Schedule",
    "ConstantSchedule",
    "CosineSchedule",
    "WarmupSchedule",
]


class Schedule:
    """Maps a step index to a learning rate."""

    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        """Learning rate at ``step`` (overridden by subclasses)."""
        raise NotImplementedError


class ConstantSchedule(Schedule):
    """A fixed learning rate at every step."""

    def __init__(self, lr: float) -> None:
        self.lr = float(lr)

    def lr_at(self, step: int) -> float:
        """The constant rate, independent of ``step``."""
        return self.lr


class CosineSchedule(Schedule):
    """Cosine decay from ``peak`` to ``floor`` over ``total_steps``."""

    def __init__(self, peak: float, total_steps: int, floor: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.peak = float(peak)
        self.floor = float(floor)
        self.total_steps = int(total_steps)

    def lr_at(self, step: int) -> float:
        """Cosine-interpolated rate at ``step``."""
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor + (self.peak - self.floor) * cosine


class WarmupSchedule(Schedule):
    """Linear warmup for ``warmup_steps`` wrapping an inner schedule."""

    def __init__(self, inner: Schedule, warmup_steps: int) -> None:
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.inner = inner
        self.warmup_steps = int(warmup_steps)

    def lr_at(self, step: int) -> float:
        """Inner schedule's rate, linearly scaled during warmup."""
        base = self.inner.lr_at(step)
        if self.warmup_steps and step < self.warmup_steps:
            return base * (step + 1) / self.warmup_steps
        return base
