"""Causal language-model training loop.

Keeps the loop deliberately small: sample batches of fixed-length windows
from a token stream, compute next-token cross-entropy via the autograd path,
clip, step, anneal.  This is sufficient to give the tiny stand-in models the
learned structure the quantization experiments need.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional

import numpy as np

from repro.nn.transformer import LlamaModel
from repro.training.optim import AdamW, clip_grad_norm
from repro.training.schedule import CosineSchedule, WarmupSchedule

__all__ = [
    "TrainingConfig",
    "TrainingResult",
    "sample_batch",
    "Trainer",
]


@dataclasses.dataclass
class TrainingConfig:
    """Hyper-parameters of a training run."""

    steps: int = 1500
    batch_size: int = 16
    seq_len: int = 64
    lr: float = 3e-3
    weight_decay: float = 0.01
    warmup_steps: int = 50
    grad_clip: float = 1.0
    seed: int = 0
    log_every: int = 0  # 0 disables progress callbacks

    def __post_init__(self) -> None:
        if self.steps <= 0 or self.batch_size <= 0 or self.seq_len <= 0:
            raise ValueError("steps, batch_size and seq_len must be positive")


@dataclasses.dataclass
class TrainingResult:
    """Summary of a finished run."""

    steps: int
    final_loss: float
    loss_history: list[float]
    wall_seconds: float


def sample_batch(
    tokens: np.ndarray,
    batch_size: int,
    seq_len: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``batch_size`` random windows; returns (inputs, targets)."""
    tokens = np.asarray(tokens)
    if tokens.size < seq_len + 1:
        raise ValueError(
            f"token stream of length {tokens.size} shorter than "
            f"seq_len+1={seq_len + 1}"
        )
    starts = rng.integers(0, tokens.size - seq_len - 1, size=batch_size)
    windows = np.stack([tokens[s : s + seq_len + 1] for s in starts])
    return windows[:, :-1], windows[:, 1:]


class Trainer:
    """Trains a :class:`LlamaModel` on a flat token stream."""

    def __init__(
        self,
        model: LlamaModel,
        config: TrainingConfig,
        on_step: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.on_step = on_step
        self.optimizer = AdamW(
            model.parameters(),
            lr=config.lr,
            weight_decay=config.weight_decay,
        )
        self.schedule = WarmupSchedule(
            CosineSchedule(config.lr, config.steps, floor=config.lr * 0.1),
            config.warmup_steps,
        )

    def fit(self, tokens: np.ndarray) -> TrainingResult:
        """Run the configured number of steps over ``tokens``."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        history: list[float] = []
        started = time.perf_counter()
        for step in range(config.steps):
            inputs, targets = sample_batch(
                tokens, config.batch_size, config.seq_len, rng
            )
            self.optimizer.zero_grad()
            loss = self.model.loss(inputs, targets)
            loss.backward()
            clip_grad_norm(self.model.parameters(), config.grad_clip)
            self.optimizer.lr = self.schedule.lr_at(step)
            self.optimizer.step()
            value = loss.item()
            history.append(value)
            if self.on_step and config.log_every and step % config.log_every == 0:
                self.on_step(step, value)
        return TrainingResult(
            steps=config.steps,
            final_loss=history[-1],
            loss_history=history,
            wall_seconds=time.perf_counter() - started,
        )
